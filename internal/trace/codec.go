package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"geosocial/internal/poi"
)

// Format identifies an on-disk dataset encoding.
type Format int

// Supported dataset file formats.
const (
	// FormatJSON is the original single-document JSON encoding.
	FormatJSON Format = iota
	// FormatBinary is the streaming binary encoding (see binary.go).
	FormatBinary
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatBinary:
		return "binary"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// MarshalJSON encodes the format as its String() name, so machine-
// readable reports say "binary", not an opaque enum number.
func (f Format) MarshalJSON() ([]byte, error) { return json.Marshal(f.String()) }

// UnmarshalJSON accepts the names produced by MarshalJSON.
func (f *Format) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "json":
		*f = FormatJSON
	case "binary":
		*f = FormatBinary
	default:
		return fmt.Errorf("trace: unknown format %q", s)
	}
	return nil
}

// Ext returns the conventional file extension for the format (without
// compression suffix): ".json" or ".bin".
func (f Format) Ext() string {
	if f == FormatBinary {
		return ".bin"
	}
	return ".json"
}

// formatForPath selects the save encoding from the path suffix: ".bin"
// (optionally ".bin.gz") means binary, everything else JSON. Loading
// never trusts the suffix — LoadFile and OpenStream sniff magic bytes.
func formatForPath(path string) Format {
	p := strings.TrimSuffix(path, ".gz")
	if strings.HasSuffix(p, ".bin") {
		return FormatBinary
	}
	return FormatJSON
}

// WriteJSON encodes the dataset as JSON to w.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("trace: encode dataset %q: %w", d.Name, err)
	}
	return nil
}

// ReadJSON decodes a dataset from JSON and validates it.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("trace: decode dataset: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("trace: invalid dataset: %w", err)
	}
	return &d, nil
}

// SaveFile writes the dataset to path, gzip-compressed when the path ends
// in ".gz" and binary-encoded when the (uncompressed) suffix is ".bin"
// (JSON otherwise). The write is atomic: bytes go to a temporary file in
// the same directory which is renamed over path only after a successful
// flush, so a crash or write error mid-save never leaves a truncated
// dataset at the destination.
func (d *Dataset) SaveFile(path string) (err error) {
	f, err := createTemp(path)
	if err != nil {
		return fmt.Errorf("trace: save dataset: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if formatForPath(path) == FormatBinary {
		err = d.WriteBinary(bw)
	} else {
		err = d.WriteJSON(bw)
	}
	if err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("trace: save dataset: %w", err)
	}
	if gz != nil {
		if err = gz.Close(); err != nil {
			return fmt.Errorf("trace: save dataset: %w", err)
		}
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("trace: save dataset: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("trace: save dataset: %w", err)
	}
	return nil
}

// createTemp opens an exclusive temporary file next to path for an
// atomic save. Unlike os.CreateTemp it opens with mode 0666, so the
// process umask applies exactly as it would to a plain os.Create — a
// restrictive umask keeps the saved dataset private.
func createTemp(path string) (*os.File, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	pid := os.Getpid()
	for attempt := 0; ; attempt++ {
		name := filepath.Join(dir, fmt.Sprintf("%s.tmp-%d-%d", base, pid, attempt))
		f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
		if err == nil {
			return f, nil
		}
		if !os.IsExist(err) || attempt >= 100 {
			return nil, err
		}
	}
}

// syncDir fsyncs a directory, making just-renamed (or just-linked)
// entries durable. Local to trace because importing the checkpoint
// package's SyncDir would cycle.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// errMmapUnsupported marks files (or platforms) where memory-mapped
// reading is unavailable; callers fall back to buffered streaming.
var errMmapUnsupported = fmt.Errorf("trace: mmap unsupported")

// mmapDisabled forces the buffered streaming path even where mmap would
// work. Tests flip it to pin that both readers produce identical
// results.
var mmapDisabled bool

// SetMmapDisabled forces (true) or re-allows (false) memory-mapped
// reading of uncompressed binary files, returning the previous setting.
// It exists so tests and diagnostics can pin that the mmap and buffered
// streaming readers produce identical results; it must not be flipped
// concurrently with OpenStream/OpenShard calls.
func SetMmapDisabled(v bool) bool {
	prev := mmapDisabled
	mmapDisabled = v
	return prev
}

// closerFunc adapts a plain func to io.Closer (for unmap functions).
type closerFunc func() error

func (c closerFunc) Close() error { return c() }

// openMapped tries the zero-copy path for an open file: if the file is
// mappable and holds an uncompressed binary dataset, it returns a
// reader slicing frames straight out of the mapping, plus the unmap
// closer. Any other outcome (gzip, JSON, unsupported platform or file)
// reports ok=false with the file offset untouched, and the caller runs
// the buffered streaming path instead.
func openMapped(f *os.File) (sr *StreamReader, unmap io.Closer, ok bool, err error) {
	if mmapDisabled {
		return nil, nil, false, nil
	}
	data, unmapFn, merr := mmapFile(f)
	if merr != nil {
		return nil, nil, false, nil
	}
	if len(data) < len(binaryMagic) || [4]byte(data[:len(binaryMagic)]) != binaryMagic {
		unmapFn()
		return nil, nil, false, nil
	}
	sr, err = NewStreamReaderBytes(data)
	if err != nil {
		unmapFn()
		return nil, nil, false, err
	}
	return sr, closerFunc(unmapFn), true, nil
}

// sniffReader detects gzip by magic bytes (regardless of file suffix) and
// returns a buffered reader over the uncompressed stream plus a closer
// for the gzip layer (nil when not compressed).
func sniffReader(r io.Reader) (*bufio.Reader, io.Closer, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr, err := br.Peek(2)
	if err == nil && hdr[0] == 0x1f && hdr[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, nil, err
		}
		return bufio.NewReaderSize(gz, 1<<16), gz, nil
	}
	return br, nil, nil
}

// isBinary reports whether the buffered stream starts with the binary
// dataset magic.
func isBinary(br *bufio.Reader) bool {
	hdr, err := br.Peek(len(binaryMagic))
	return err == nil && [4]byte(hdr) == binaryMagic
}

// DetectFormat sniffs a dataset file's encoding from its magic bytes
// (transparently looking through gzip); the file suffix is ignored.
func DetectFormat(path string) (Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return FormatJSON, fmt.Errorf("trace: detect format: %w", err)
	}
	defer f.Close()
	br, gz, err := sniffReader(f)
	if err != nil {
		return FormatJSON, fmt.Errorf("trace: detect format: %w", err)
	}
	if gz != nil {
		defer gz.Close()
	}
	if isBinary(br) {
		return FormatBinary, nil
	}
	// "Not binary" must mean readable non-binary bytes, not a read
	// failure: an empty or unreadable file is an error, never "JSON".
	if _, err := br.Peek(1); err != nil {
		return FormatJSON, fmt.Errorf("trace: detect format: %w", noEOF(err))
	}
	return FormatJSON, nil
}

// LoadFile reads a dataset from a file in either format and validates
// it. Compression and encoding are detected from magic bytes, not the
// file name. The whole dataset is materialized in memory; use OpenStream
// for bounded-memory access to binary files.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load dataset: %w", err)
	}
	defer f.Close()
	br, gz, err := sniffReader(f)
	if err != nil {
		return nil, fmt.Errorf("trace: load dataset: %w", err)
	}
	if gz != nil {
		defer gz.Close()
	}
	if isBinary(br) {
		return ReadBinary(br)
	}
	return ReadJSON(br)
}

// DatasetStream is a read handle over a dataset file: the header data
// (name, POI table) plus a UserSource over its users. For binary files
// users are decoded one frame at a time — memory stays O(1 user); for
// JSON files the document model forces a full in-memory load and the
// stream merely iterates it. Close releases the underlying file.
type DatasetStream struct {
	// Name is the dataset name from the file header.
	Name string
	// POIs is the venue table the users' checkins refer to.
	POIs []poi.POI
	// Format is the detected on-disk encoding.
	Format Format

	src     UserSource
	closers []io.Closer
}

// Next yields the next user, or io.EOF after the last one.
func (s *DatasetStream) Next() (*User, error) { return s.src.Next() }

// Frames returns the two-stage FrameSource view of the stream: raw
// frames for binary files (decode can then run on a worker pool) and
// wrapped pre-decoded users for JSON files. Frames and Next iterate the
// same underlying cursor, so use one or the other, not both.
func (s *DatasetStream) Frames() FrameSource {
	if fs, ok := s.src.(FrameSource); ok {
		return fs
	}
	return SourceFrames(s.src)
}

// DB builds the POI database for the stream's venue table.
func (s *DatasetStream) DB() (*poi.DB, error) { return poi.NewDB(s.POIs) }

// Close releases the stream's file handles. Safe to call more than once.
func (s *DatasetStream) Close() error {
	var first error
	for _, c := range s.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}

// OpenStream opens a dataset file for per-user iteration, sniffing
// compression and encoding from magic bytes. Uncompressed binary files
// are memory-mapped where the platform supports it, so frame bytes are
// sliced from the mapping instead of copied through io.Reader; gzip
// input, JSON input and other platforms use the buffered streaming
// path, with identical results. Callers must Close the returned stream.
func OpenStream(path string) (*DatasetStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open dataset: %w", err)
	}
	if sr, unmap, ok, err := openMapped(f); err != nil {
		f.Close()
		return nil, err
	} else if ok {
		return &DatasetStream{
			Name:    sr.Name(),
			POIs:    sr.POIs(),
			Format:  FormatBinary,
			src:     sr,
			closers: []io.Closer{unmap, f},
		}, nil
	}
	br, gz, err := sniffReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: open dataset: %w", err)
	}
	closers := []io.Closer{f}
	if gz != nil {
		closers = []io.Closer{gz, f}
	}
	if isBinary(br) {
		sr, err := NewStreamReader(br)
		if err != nil {
			for _, c := range closers {
				c.Close()
			}
			return nil, err
		}
		return &DatasetStream{
			Name:    sr.Name(),
			POIs:    sr.POIs(),
			Format:  FormatBinary,
			src:     sr,
			closers: closers,
		}, nil
	}
	ds, err := ReadJSON(br)
	for _, c := range closers {
		c.Close()
	}
	if err != nil {
		return nil, err
	}
	return &DatasetStream{
		Name:   ds.Name,
		POIs:   ds.POIs,
		Format: FormatJSON,
		src:    ds.Source(),
	}, nil
}
