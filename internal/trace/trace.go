// Package trace defines the data model of the study: per-minute GPS
// traces, detected POI visits, Foursquare-style checkin events, user
// profiles and paired datasets, together with validation, summary
// statistics (Table 1) and JSON codecs.
//
// The two trace kinds mirror exactly what the paper's smartphone app
// collected (§3): a per-minute GPS location stream, and the user's checkin
// events polled from the Foursquare API (timestamp, POI name, category,
// coordinates).
package trace

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"geosocial/internal/geo"
	"geosocial/internal/poi"
)

// GPSPoint is one fix in a GPS trace.
type GPSPoint struct {
	// T is the fix time as Unix seconds.
	T int64 `json:"t"`
	// Loc is the coordinate of the fix.
	Loc geo.LatLon `json:"loc"`
	// Indoor marks fixes synthesized from the WiFi/accelerometer
	// stationarity fallback the app uses when GPS is unavailable inside
	// a POI (§3). Indoor fixes carry the last known outdoor location.
	Indoor bool `json:"indoor,omitempty"`
}

// Time returns the fix time.
func (p GPSPoint) Time() time.Time { return time.Unix(p.T, 0).UTC() }

// GPSTrace is a time-ordered sequence of fixes for one user.
type GPSTrace []GPSPoint

// Sorted reports whether the trace is in non-decreasing time order.
func (tr GPSTrace) Sorted() bool {
	return sort.SliceIsSorted(tr, func(i, j int) bool { return tr[i].T < tr[j].T })
}

// Sort orders the trace by time (stable, preserving equal-time order).
func (tr GPSTrace) Sort() {
	sort.SliceStable(tr, func(i, j int) bool { return tr[i].T < tr[j].T })
}

// Span returns the first and last fix times, or zeros for an empty trace.
func (tr GPSTrace) Span() (first, last int64) {
	if len(tr) == 0 {
		return 0, 0
	}
	return tr[0].T, tr[len(tr)-1].T
}

// Validate checks trace invariants: time-ordered and valid coordinates.
func (tr GPSTrace) Validate() error {
	for i, p := range tr {
		if !p.Loc.Valid() {
			return fmt.Errorf("trace: GPS point %d has invalid location %v", i, p.Loc)
		}
		if i > 0 && p.T < tr[i-1].T {
			return fmt.Errorf("trace: GPS point %d out of order (%d < %d)", i, p.T, tr[i-1].T)
		}
	}
	return nil
}

// Visit is a stay at one location for longer than the visit threshold
// (the paper uses 6 minutes), detected from the GPS trace.
type Visit struct {
	// Start and End are the stay bounds as Unix seconds.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Loc is the stay centroid.
	Loc geo.LatLon `json:"loc"`
	// POIID is the identifier of the POI this visit was snapped to, or
	// -1 when unknown. Analysis code treats it as opaque.
	POIID int `json:"poi_id"`
	// Category is the category of the snapped POI (valid only when
	// POIID >= 0).
	Category poi.Category `json:"category"`
}

// Duration returns the stay duration.
func (v Visit) Duration() time.Duration {
	return time.Duration(v.End-v.Start) * time.Second
}

// DeltaT implements the paper's timestamp distance between a visit and a
// checkin at time tc (§4.1 footnote): zero when tc falls inside
// [Start, End], otherwise the distance to the nearer endpoint.
func (v Visit) DeltaT(tc int64) time.Duration {
	if tc >= v.Start && tc <= v.End {
		return 0
	}
	var d int64
	if tc < v.Start {
		d = v.Start - tc
	} else {
		d = tc - v.End
	}
	return time.Duration(d) * time.Second
}

// Checkin is one Foursquare-style checkin event: a timestamp plus the
// claimed POI's name, category and coordinates (§3).
type Checkin struct {
	// T is the checkin time as Unix seconds.
	T int64 `json:"t"`
	// POIID identifies the claimed POI.
	POIID int `json:"poi_id"`
	// POIName is the claimed POI's display name.
	POIName string `json:"poi_name"`
	// Category is the claimed POI's category.
	Category poi.Category `json:"category"`
	// Loc is the claimed POI's coordinate (not the user's position).
	Loc geo.LatLon `json:"loc"`
	// Truth is the generator's ground-truth label. It is populated only
	// for synthetic data and must never be read by analysis code; the
	// validator uses it to score itself. Empty for real data.
	Truth Label `json:"truth,omitempty"`
}

// Time returns the checkin time.
func (c Checkin) Time() time.Time { return time.Unix(c.T, 0).UTC() }

// Label is a ground-truth behaviour label attached by the synthetic
// generator.
type Label string

// Ground-truth labels. LabelNone marks real (unlabeled) data.
const (
	LabelNone        Label = ""
	LabelHonest      Label = "honest"
	LabelSuperfluous Label = "superfluous"
	LabelRemote      Label = "remote"
	LabelDriveby     Label = "driveby"
	LabelOther       Label = "other" // extraneous with no distinctive pattern
)

// Extraneous reports whether the label denotes a checkin without a
// matching physical visit.
func (l Label) Extraneous() bool {
	switch l {
	case LabelSuperfluous, LabelRemote, LabelDriveby, LabelOther:
		return true
	default:
		return false
	}
}

// CheckinTrace is a time-ordered sequence of checkins for one user.
type CheckinTrace []Checkin

// Sorted reports whether the trace is in non-decreasing time order.
func (tr CheckinTrace) Sorted() bool {
	return sort.SliceIsSorted(tr, func(i, j int) bool { return tr[i].T < tr[j].T })
}

// Sort orders the trace by time (stable).
func (tr CheckinTrace) Sort() {
	sort.SliceStable(tr, func(i, j int) bool { return tr[i].T < tr[j].T })
}

// Validate checks trace invariants.
func (tr CheckinTrace) Validate() error {
	for i, c := range tr {
		if !c.Loc.Valid() {
			return fmt.Errorf("trace: checkin %d has invalid location %v", i, c.Loc)
		}
		if i > 0 && c.T < tr[i-1].T {
			return fmt.Errorf("trace: checkin %d out of order (%d < %d)", i, c.T, tr[i-1].T)
		}
	}
	return nil
}

// Profile is the user's Foursquare profile features used in Table 2.
type Profile struct {
	Friends int `json:"friends"`
	Badges  int `json:"badges"`
	Mayors  int `json:"mayors"`
	// CheckinsPerDay is the user's checkin rate over the measurement
	// window.
	CheckinsPerDay float64 `json:"checkins_per_day"`
}

// User pairs one participant's GPS trace with her checkin trace.
type User struct {
	ID       int          `json:"id"`
	Profile  Profile      `json:"profile"`
	GPS      GPSTrace     `json:"gps"`
	Checkins CheckinTrace `json:"checkins"`
	// Days is the measurement coverage for this user in days.
	Days float64 `json:"days"`
}

// Validate checks both traces.
func (u *User) Validate() error {
	if err := u.GPS.Validate(); err != nil {
		return fmt.Errorf("user %d: %w", u.ID, err)
	}
	if err := u.Checkins.Validate(); err != nil {
		return fmt.Errorf("user %d: %w", u.ID, err)
	}
	return nil
}

// validateRefs checks that every checkin claims a POI that exists in a
// table of numPOIs entries (IDs equal indices, as poi.NewDB enforces).
func (u *User) validateRefs(numPOIs int) error {
	for i, c := range u.Checkins {
		if c.POIID < 0 || c.POIID >= numPOIs {
			return fmt.Errorf("user %d: checkin %d claims unknown POI %d (table has %d)",
				u.ID, i, c.POIID, numPOIs)
		}
	}
	return nil
}

// Dataset is a full study dataset: a POI database plus per-user paired
// traces (and, once detected, visits).
type Dataset struct {
	// Name labels the dataset ("primary", "baseline", …).
	Name string `json:"name"`
	// POIs is the venue database the checkins refer to.
	POIs []poi.POI `json:"pois"`
	// Users holds the participants.
	Users []*User `json:"users"`
}

// ErrEmptyDataset is returned when an operation requires at least one user.
var ErrEmptyDataset = errors.New("trace: empty dataset")

// Validate checks every user and the POI table. Beyond per-trace
// invariants it enforces the dataset-level ones: user IDs must be unique
// (Summarize keys visit counts by ID, so duplicates would silently merge
// rows) and every checkin must claim a POI that exists in the table.
func (d *Dataset) Validate() error {
	if _, err := poi.NewDB(d.POIs); err != nil {
		return err
	}
	seen := make(map[int]struct{}, len(d.Users))
	for _, u := range d.Users {
		if _, dup := seen[u.ID]; dup {
			return fmt.Errorf("trace: duplicate user ID %d", u.ID)
		}
		seen[u.ID] = struct{}{}
		if err := u.Validate(); err != nil {
			return err
		}
		if err := u.validateRefs(len(d.POIs)); err != nil {
			return err
		}
	}
	return nil
}

// UserSource yields a dataset's users one at a time: Next returns io.EOF
// after the last user. It is the seam between the codecs (in-memory
// datasets, binary stream readers) and bounded-memory consumers.
type UserSource interface {
	Next() (*User, error)
}

// sliceSource adapts an in-memory user slice to UserSource.
type sliceSource struct {
	users []*User
	pos   int
}

// Next yields the slice's users in order, then io.EOF.
func (s *sliceSource) Next() (*User, error) {
	if s.pos >= len(s.users) {
		return nil, io.EOF
	}
	u := s.users[s.pos]
	s.pos++
	return u, nil
}

// Source returns a UserSource over the in-memory users.
func (d *Dataset) Source() UserSource { return &sliceSource{users: d.Users} }

// DB builds the POI database for the dataset.
func (d *Dataset) DB() (*poi.DB, error) { return poi.NewDB(d.POIs) }

// Summary is the Table 1 row for a dataset: user count, average
// measurement days per user, checkin count, visit count and GPS point
// count.
type Summary struct {
	Name      string  `json:"name"`
	Users     int     `json:"users"`
	AvgDays   float64 `json:"avg_days"`
	Checkins  int     `json:"checkins"`
	Visits    int     `json:"visits"`
	GPSPoints int     `json:"gps_points"`
}

// Summarize computes the Table 1 row. Visits must be supplied by the
// caller (visit detection lives in internal/visits) as a per-user count;
// pass nil to leave the visit column zero.
func (d *Dataset) Summarize(visitCounts map[int]int) Summary {
	s := Summary{Name: d.Name, Users: len(d.Users)}
	var days float64
	for _, u := range d.Users {
		days += u.Days
		s.Checkins += len(u.Checkins)
		s.GPSPoints += len(u.GPS)
		if visitCounts != nil {
			s.Visits += visitCounts[u.ID]
		}
	}
	if len(d.Users) > 0 {
		s.AvgDays = days / float64(len(d.Users))
	}
	return s
}

// String implements fmt.Stringer with a Table 1 style row.
func (s Summary) String() string {
	return fmt.Sprintf("%-10s users=%d avgDays=%.1f checkins=%d visits=%d gpsPoints=%d",
		s.Name, s.Users, s.AvgDays, s.Checkins, s.Visits, s.GPSPoints)
}
