package trace_test

// Round-trip, corruption and streaming-contract tests for the binary
// dataset codec. These live in an external test package so they can
// exercise the codec against real synthetic datasets (internal/synth
// imports internal/trace, so the internal test package cannot).

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"geosocial/internal/geo"
	"geosocial/internal/poi"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

// genDataset produces a small synthetic primary dataset.
func genDataset(t *testing.T, seed uint64, scale float64) *trace.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(scale), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// binaryRoundTrip encodes ds as binary and decodes it back.
func binaryRoundTrip(t *testing.T, ds *trace.Dataset) *trace.Dataset {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// jsonRoundTrip encodes ds as JSON and decodes it back.
func jsonRoundTrip(t *testing.T, ds *trace.Dataset) *trace.Dataset {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestBinaryRoundTripAgainstJSON is the codec's core property: after one
// binary round trip (which quantizes coordinates to the E7 grid), a
// dataset round-trips exactly through BOTH codecs — the JSON-loaded and
// binary-streamed views are deeply equal — across seeds and scales.
func TestBinaryRoundTripAgainstJSON(t *testing.T) {
	cases := []struct {
		seed  uint64
		scale float64
	}{
		{7, 0.02},
		{42, 0.03},
		{1001, 0.05},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("seed=%d/scale=%g", c.seed, c.scale), func(t *testing.T) {
			ds := genDataset(t, c.seed, c.scale)
			onGrid := binaryRoundTrip(t, ds)
			if len(onGrid.Users) != len(ds.Users) || onGrid.Name != ds.Name {
				t.Fatalf("binary round trip lost structure: %d users, name %q",
					len(onGrid.Users), onGrid.Name)
			}
			// Quantization moved every coordinate by under 1.1 cm.
			for ui, u := range ds.Users {
				for pi, p := range u.GPS {
					if d := geo.Distance(p.Loc, onGrid.Users[ui].GPS[pi].Loc); d > 0.02 {
						t.Fatalf("user %d GPS %d moved %.4f m in quantization", ui, pi, d)
					}
				}
			}
			viaJSON := jsonRoundTrip(t, onGrid)
			viaBinary := binaryRoundTrip(t, onGrid)
			if !reflect.DeepEqual(onGrid, viaJSON) {
				t.Fatal("JSON round trip of an E7-grid dataset is not identity")
			}
			if !reflect.DeepEqual(onGrid, viaBinary) {
				t.Fatal("binary round trip is not idempotent")
			}
		})
	}
}

// TestBinaryRoundTripEdgeCases covers the degenerate shapes: empty
// dataset, empty POI table, single user, users with zero checkins and
// zero GPS points, and non-contiguous user IDs.
func TestBinaryRoundTripEdgeCases(t *testing.T) {
	base := geo.LatLon{Lat: 34.4208, Lon: -119.6982}
	pois := []poi.POI{
		{ID: 0, Name: "A", Category: poi.Food, Loc: base, Popularity: 1.5},
		{ID: 1, Name: "B", Category: poi.Shop, Loc: geo.Destination(base, 90, 500)},
	}
	cases := []struct {
		name string
		ds   *trace.Dataset
	}{
		{"empty", &trace.Dataset{Name: "empty"}},
		{"pois-only", &trace.Dataset{Name: "pois", POIs: pois}},
		{"zero-trace-user", &trace.Dataset{
			Name: "zero",
			POIs: pois,
			Users: []*trace.User{
				{ID: 3, Days: 2.5, Profile: trace.Profile{Friends: 4, CheckinsPerDay: 0.25}},
			},
		}},
		{"full-user", &trace.Dataset{
			Name: "full",
			POIs: pois,
			Users: []*trace.User{
				{ID: 9}, // zero everything, non-contiguous ID
				{
					ID:   2,
					Days: 1,
					GPS: trace.GPSTrace{
						{T: 0, Loc: base},
						{T: 60, Loc: base, Indoor: true},
						{T: 60, Loc: geo.Destination(base, 0, 40)}, // equal timestamps
					},
					Checkins: trace.CheckinTrace{
						{T: 30, POIID: 0, POIName: "A", Category: poi.Food, Loc: base, Truth: trace.LabelHonest},
						{T: 90, POIID: 1, POIName: "B", Category: poi.Shop, Loc: pois[1].Loc, Truth: "custom-label"},
					},
				},
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := binaryRoundTrip(t, tc.ds)
			want := binaryRoundTrip(t, got) // compare on the E7 grid
			if !reflect.DeepEqual(got, want) {
				t.Fatal("binary round trip not idempotent")
			}
			if len(got.Users) != len(tc.ds.Users) || len(got.POIs) != len(tc.ds.POIs) {
				t.Fatalf("lost structure: %d users, %d POIs", len(got.Users), len(got.POIs))
			}
			if len(tc.ds.Users) > 0 {
				if got.Users[0].ID != tc.ds.Users[0].ID {
					t.Errorf("user ID %d, want %d", got.Users[0].ID, tc.ds.Users[0].ID)
				}
			}
			if tc.name == "full-user" {
				u := got.Users[1]
				if !u.GPS[1].Indoor || u.GPS[0].Indoor {
					t.Error("indoor flags lost")
				}
				if u.Checkins[0].Truth != trace.LabelHonest || u.Checkins[1].Truth != "custom-label" {
					t.Errorf("truth labels lost: %q, %q", u.Checkins[0].Truth, u.Checkins[1].Truth)
				}
				if u.Checkins[1].POIName != "B" {
					t.Errorf("POI name lost: %q", u.Checkins[1].POIName)
				}
			}
		})
	}
}

// TestBinarySmallerThanJSON enforces the codec's reason to exist: on a
// real synthetic dataset the binary encoding must be several times
// smaller than JSON (the benches in codec_bench_test.go quantify the
// decode-throughput side).
func TestBinarySmallerThanJSON(t *testing.T) {
	ds := genDataset(t, 42, 0.03)
	var jbuf, bbuf bytes.Buffer
	if err := ds.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteBinary(&bbuf); err != nil {
		t.Fatal(err)
	}
	if ratio := float64(jbuf.Len()) / float64(bbuf.Len()); ratio < 4 {
		t.Errorf("binary only %.1fx smaller than JSON (%d vs %d bytes), want >= 4x",
			ratio, bbuf.Len(), jbuf.Len())
	}
}

// TestBinaryTruncationRejected cuts a valid stream at every prefix length
// and requires a loud error: a truncated file must never decode as a
// silently shorter dataset.
func TestBinaryTruncationRejected(t *testing.T) {
	// Hand-built rather than synthetic: the stream stays a few hundred
	// bytes, so the exhaustive per-byte scan covers every decode state
	// (header, POI table, frames, sentinel, trailer) in milliseconds.
	base := geo.LatLon{Lat: 34.4208, Lon: -119.6982}
	ds := &trace.Dataset{
		Name: "trunc",
		POIs: []poi.POI{
			{ID: 0, Name: "A", Category: poi.Food, Loc: base, Popularity: 2},
			{ID: 1, Name: "B", Category: poi.Shop, Loc: geo.Destination(base, 90, 400)},
		},
		Users: []*trace.User{
			{
				ID:   0,
				Days: 1,
				GPS:  trace.GPSTrace{{T: 0, Loc: base}, {T: 60, Loc: base, Indoor: true}},
				Checkins: trace.CheckinTrace{
					{T: 30, POIID: 0, POIName: "A", Category: poi.Food, Loc: base, Truth: trace.LabelHonest},
				},
			},
			{ID: 1, Days: 2},
		},
	}
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for n := 0; n < len(raw); n++ {
		if _, err := trace.ReadBinary(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation at byte %d/%d decoded without error", n, len(raw))
		}
	}
	if _, err := trace.ReadBinary(bytes.NewReader(raw)); err != nil {
		t.Fatalf("full stream failed to decode: %v", err)
	}
}

// TestBinaryCorruptHeaderRejected covers the header failure modes: bad
// magic, unsupported version, and absurd table sizes from corrupt counts.
func TestBinaryCorruptHeaderRejected(t *testing.T) {
	ds := genDataset(t, 5, 0.02)
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	bad := append([]byte(nil), raw...)
	copy(bad, "JUNK")
	if _, err := trace.ReadBinary(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err = %v", err)
	}

	bad = append([]byte(nil), raw...)
	bad[4] = 99 // version varint
	if _, err := trace.ReadBinary(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: err = %v", err)
	}

	// A giant string length must be rejected before any allocation.
	bad = append([]byte(nil), raw[:5]...)
	bad = append(bad, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f) // name length ~ 2^48
	if _, err := trace.ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("oversized name length accepted")
	}
}

// TestStreamWriterRejectsInvalid pins the writer-side validation:
// duplicate user IDs, checkins claiming unknown POIs, and invalid traces
// must fail at write time, not poison a reader later.
func TestStreamWriterRejectsInvalid(t *testing.T) {
	base := geo.LatLon{Lat: 34.4208, Lon: -119.6982}
	pois := []poi.POI{{ID: 0, Name: "A", Category: poi.Food, Loc: base}}
	sw, err := trace.NewStreamWriter(io.Discard, "x", pois)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteUser(&trace.User{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteUser(&trace.User{ID: 1}); err == nil {
		t.Error("duplicate user ID accepted")
	}
	if err := sw.WriteUser(&trace.User{
		ID:       2,
		Checkins: trace.CheckinTrace{{T: 0, POIID: 5, Loc: base}},
	}); err == nil {
		t.Error("checkin claiming unknown POI accepted")
	}
	if err := sw.WriteUser(&trace.User{
		ID:  3,
		GPS: trace.GPSTrace{{T: 100, Loc: base}, {T: 50, Loc: base}},
	}); err == nil {
		t.Error("out-of-order GPS trace accepted")
	}
	// Bad POI table fails before any frame is written.
	if _, err := trace.NewStreamWriter(io.Discard, "x", []poi.POI{{ID: 7, Loc: base}}); err == nil {
		t.Error("bad POI numbering accepted")
	}
}

// TestStreamReaderDuplicateIDRejected splices a user frame into a stream
// twice so both frames carry the same ID and requires the reader to
// notice.
func TestStreamReaderDuplicateIDRejected(t *testing.T) {
	writeStream := func(users ...*trace.User) []byte {
		var buf bytes.Buffer
		sw, err := trace.NewStreamWriter(&buf, "dup", nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range users {
			if err := sw.WriteUser(u); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	// Same header prefix in both streams; the empty one is header +
	// 1-byte sentinel + 1-byte count, which locates the frame bytes.
	empty := writeStream()
	one := writeStream(&trace.User{ID: 4, Days: 1})
	hdrLen := len(empty) - 2
	frame := one[hdrLen : len(one)-2]

	dup := append([]byte(nil), one[:hdrLen]...)
	dup = append(dup, frame...)
	dup = append(dup, frame...)
	dup = append(dup, 0x00, 0x02) // sentinel, user count 2
	sr, err := trace.NewStreamReader(bytes.NewReader(dup))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err == nil || !strings.Contains(err.Error(), "duplicate user ID") {
		t.Errorf("duplicate user ID not rejected: %v", err)
	}
}

// TestSaveLoadBinaryFile exercises the file layer: .bin and .bin.gz
// suffixes select the binary codec, and LoadFile sniffs the encoding from
// magic bytes even when the suffix lies.
func TestSaveLoadBinaryFile(t *testing.T) {
	dir := t.TempDir()
	ds := binaryRoundTrip(t, genDataset(t, 7, 0.02)) // on the E7 grid
	for _, name := range []string{"ds.bin", "ds.bin.gz"} {
		path := filepath.Join(dir, name)
		if err := ds.SaveFile(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f, err := trace.DetectFormat(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if f != trace.FormatBinary {
			t.Fatalf("%s: detected %v, want binary", name, f)
		}
		got, err := trace.LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(ds, got) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
	// An empty file is neither format: DetectFormat must error, not
	// report JSON.
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.DetectFormat(empty); err == nil {
		t.Error("empty file detected as a valid format")
	}

	// Misleading suffix: binary bytes under a .json name still load.
	lying := filepath.Join(dir, "lying.json")
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lying, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := trace.LoadFile(lying)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, got) {
		t.Fatal("sniffed load mismatch")
	}
}

// TestOpenStreamBothFormats verifies OpenStream yields the same user
// sequence for the JSON (slurped) and binary (streamed) encodings of one
// dataset.
func TestOpenStreamBothFormats(t *testing.T) {
	dir := t.TempDir()
	ds := binaryRoundTrip(t, genDataset(t, 11, 0.02))
	jsonPath := filepath.Join(dir, "ds.json.gz")
	binPath := filepath.Join(dir, "ds.bin.gz")
	if err := ds.SaveFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := ds.SaveFile(binPath); err != nil {
		t.Fatal(err)
	}
	collect := func(path string, wantFormat trace.Format) []*trace.User {
		s, err := trace.OpenStream(path)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if s.Format != wantFormat {
			t.Fatalf("%s: format %v, want %v", path, s.Format, wantFormat)
		}
		if s.Name != ds.Name || len(s.POIs) != len(ds.POIs) {
			t.Fatalf("%s: header mismatch", path)
		}
		var users []*trace.User
		for {
			u, err := s.Next()
			if err == io.EOF {
				return users
			}
			if err != nil {
				t.Fatal(err)
			}
			users = append(users, u)
		}
	}
	fromJSON := collect(jsonPath, trace.FormatJSON)
	fromBin := collect(binPath, trace.FormatBinary)
	if !reflect.DeepEqual(fromJSON, fromBin) {
		t.Fatal("user streams differ between JSON and binary files")
	}
}
