package trace

import (
	"bytes"
	"io"
	"testing"
)

// writeTestFragment builds a small two-section fragment and returns its
// bytes.
func writeTestFragment(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw, err := NewFragmentWriter(&buf, map[string]string{
		"shard":    "sha256:abc",
		"manifest": "sha256:def",
		"params":   "p1",
	})
	if err != nil {
		t.Fatalf("NewFragmentWriter: %v", err)
	}
	if err := fw.Section("records"); err != nil {
		t.Fatal(err)
	}
	for _, c := range [][]byte{[]byte("alpha"), {}, []byte("gamma")} {
		if err := fw.Chunk(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Section("meta"); err != nil {
		t.Fatal(err)
	}
	if err := fw.Chunk([]byte("meta-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := fw.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return buf.Bytes()
}

func TestFragmentRoundTrip(t *testing.T) {
	data := writeTestFragment(t)

	fr, err := NewFragmentReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewFragmentReader: %v", err)
	}
	want := map[string]string{"shard": "sha256:abc", "manifest": "sha256:def", "params": "p1"}
	for k, v := range want {
		if fr.Keys()[k] != v {
			t.Fatalf("key %q = %q, want %q", k, fr.Keys()[k], v)
		}
	}

	name, err := fr.NextSection()
	if err != nil || name != "records" {
		t.Fatalf("section 1 = %q, %v", name, err)
	}
	var got [][]byte
	for {
		c, err := fr.NextChunk()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("NextChunk: %v", err)
		}
		got = append(got, append([]byte(nil), c...))
	}
	if len(got) != 3 || string(got[0]) != "alpha" || len(got[1]) != 0 || string(got[2]) != "gamma" {
		t.Fatalf("records section chunks = %q", got)
	}

	name, err = fr.NextSection()
	if err != nil || name != "meta" {
		t.Fatalf("section 2 = %q, %v", name, err)
	}
	c, err := fr.NextChunk()
	if err != nil || string(c) != "meta-bytes" {
		t.Fatalf("meta chunk = %q, %v", c, err)
	}

	if _, err := fr.NextSection(); err != io.EOF {
		t.Fatalf("final NextSection = %v, want io.EOF", err)
	}
	// Idempotent at the end.
	if _, err := fr.NextSection(); err != io.EOF {
		t.Fatalf("repeated NextSection = %v, want io.EOF", err)
	}
}

// NextSection must skip any unread chunks of the open section, and the
// trailer must still verify.
func TestFragmentSkipSection(t *testing.T) {
	data := writeTestFragment(t)
	fr, err := NewFragmentReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if name, err := fr.NextSection(); err != nil || name != "records" {
		t.Fatalf("section 1 = %q, %v", name, err)
	}
	if name, err := fr.NextSection(); err != nil || name != "meta" {
		t.Fatalf("section 2 after skip = %q, %v", name, err)
	}
	if _, err := fr.NextSection(); err != io.EOF {
		t.Fatalf("final NextSection after skips = %v, want io.EOF", err)
	}
}

// Deterministic output: two writes of the same logical fragment are
// byte-identical (keys are sorted, nothing nondeterministic is added).
func TestFragmentDeterministic(t *testing.T) {
	a := writeTestFragment(t)
	b := writeTestFragment(t)
	if !bytes.Equal(a, b) {
		t.Fatal("identical fragments encode to different bytes")
	}
}

// Every proper prefix of a valid fragment must fail decoding — the
// trailer makes truncation detectable at any cut point.
func TestFragmentTruncation(t *testing.T) {
	data := writeTestFragment(t)
	for cut := 0; cut < len(data); cut++ {
		err := consumeFragment(data[:cut])
		if err == nil {
			t.Fatalf("fragment truncated to %d/%d bytes decoded cleanly", cut, len(data))
		}
	}
	if err := consumeFragment(data); err != nil {
		t.Fatalf("full fragment failed: %v", err)
	}
}

// consumeFragment decodes an entire fragment, returning the first error.
func consumeFragment(data []byte) error {
	fr, err := NewFragmentReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for {
		_, err := fr.NextSection()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		for {
			if _, err := fr.NextChunk(); err == io.EOF {
				break
			} else if err != nil {
				return err
			}
		}
	}
}

func TestFragmentRejectsBadMagicAndVersion(t *testing.T) {
	data := writeTestFragment(t)

	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := NewFragmentReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	bad = append([]byte(nil), data...)
	bad[4] = 99 // version uvarint
	if _, err := NewFragmentReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestFragmentWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFragmentWriter(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Chunk([]byte("x")); err == nil {
		t.Fatal("chunk outside a section accepted")
	}
	if err := fw.Section(""); err == nil {
		t.Fatal("empty section name accepted")
	}
	if err := fw.Section("s"); err != nil {
		t.Fatal(err)
	}
	if err := fw.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Section("late"); err == nil {
		t.Fatal("section after Finish accepted")
	}
	if err := fw.Chunk([]byte("late")); err == nil {
		t.Fatal("chunk after Finish accepted")
	}
}
