package trace_test

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

// genShardDS generates a small dataset already on the binary codec's E7
// coordinate grid, so shard round trips compare exactly.
func genShardDS(t *testing.T, scale float64, seed uint64) *trace.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(scale), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	onGrid, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return onGrid
}

// readShardSet opens every shard of a set and decodes all users through
// the serial UserSource path, returning them keyed by ID along with the
// per-shard counts.
func readShardSet(t *testing.T, path string) (map[int]*trace.User, []int) {
	t.Helper()
	ss, err := trace.OpenShardSet(path)
	if err != nil {
		t.Fatal(err)
	}
	users := make(map[int]*trace.User)
	counts := make([]int, len(ss.Manifest.Shards))
	for i := range ss.Manifest.Shards {
		r, err := ss.OpenShard(i)
		if err != nil {
			t.Fatal(err)
		}
		for {
			u, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := users[u.ID]; dup {
				t.Fatalf("user %d appears in more than one shard", u.ID)
			}
			users[u.ID] = u
			counts[i]++
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return users, counts
}

// TestShardRoundTrip writes a corpus at several shard counts (compressed
// and not) and checks that the union of the shards is exactly the
// original dataset and the manifest arithmetic holds.
func TestShardRoundTrip(t *testing.T) {
	ds := genShardDS(t, 0.05, 11)
	for _, tc := range []struct {
		shards   int
		compress bool
	}{
		{1, false}, {3, false}, {8, true},
	} {
		dir := t.TempDir()
		manifest, err := ds.SaveShards(dir, trace.ShardOptions{Shards: tc.shards, Compress: tc.compress})
		if err != nil {
			t.Fatal(err)
		}
		ss, err := trace.OpenShardSet(manifest)
		if err != nil {
			t.Fatal(err)
		}
		m := ss.Manifest
		if m.Name != ds.Name || m.Users != len(ds.Users) || len(m.Shards) != tc.shards {
			t.Fatalf("shards=%d: manifest %+v does not describe the dataset", tc.shards, m)
		}
		if want := trace.POIChecksum(ds.POIs); m.POIChecksum != want {
			t.Fatalf("shards=%d: manifest checksum %s, want %s", tc.shards, m.POIChecksum, want)
		}
		users, counts := readShardSet(t, manifest)
		if len(users) != len(ds.Users) {
			t.Fatalf("shards=%d: decoded %d users, want %d", tc.shards, len(users), len(ds.Users))
		}
		for _, want := range ds.Users {
			got, ok := users[want.ID]
			if !ok {
				t.Fatalf("shards=%d: user %d missing from shard set", tc.shards, want.ID)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d: user %d differs after shard round trip", tc.shards, want.ID)
			}
		}
		// Size balancing spreads the first users across all shards, so
		// every shard is populated whenever there are enough users, and
		// the per-shard counts match the manifest.
		for i, n := range counts {
			if n != m.Shards[i].Users {
				t.Fatalf("shards=%d: shard %d decoded %d users, manifest says %d", tc.shards, i, n, m.Shards[i].Users)
			}
			if len(ds.Users) >= tc.shards && n == 0 {
				t.Fatalf("shards=%d: shard %d is empty with %d users available", tc.shards, i, len(ds.Users))
			}
		}
	}
}

// TestShardWriterDeterministic pins the writer's assignment: two writes
// of the same dataset produce byte-identical shard files and manifests.
func TestShardWriterDeterministic(t *testing.T) {
	ds := genShardDS(t, 0.03, 5)
	read := func(dir string) map[string][]byte {
		t.Helper()
		if _, err := ds.SaveShards(dir, trace.ShardOptions{Shards: 3}); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]byte)
		for _, e := range entries {
			raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = raw
		}
		return out
	}
	a, b := read(t.TempDir()), read(t.TempDir())
	if len(a) != 4 { // 3 shards + manifest
		t.Fatalf("wrote %d files, want 4", len(a))
	}
	for name, raw := range a {
		if !bytes.Equal(raw, b[name]) {
			t.Errorf("%s differs between two identical writes", name)
		}
	}
}

// TestShardWriterRejectsCrossShardDuplicates covers the set-wide
// duplicate user ID check.
func TestShardWriterRejectsCrossShardDuplicates(t *testing.T) {
	ds := genShardDS(t, 0.02, 3)
	w, err := trace.NewShardWriter(t.TempDir(), "dup", ds.POIs, trace.ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteUser(ds.Users[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteUser(ds.Users[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteUser(ds.Users[0]); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate user accepted across shards: %v", err)
	}
}

// leftovers lists the regular files left in dir (obstruction
// directories planted by the test are skipped).
func leftovers(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestShardWriterCloseFailureLeavesNoOrphans forces Close to fail at
// two points past the first rename — a later shard's rename and the
// manifest publish — by planting a directory at the target path
// (rename over a directory fails). In both cases every already-renamed
// final file must be removed along with the temps: without a manifest
// those finals are unreachable orphans that poison directory-based
// OpenShardSet and leak disk forever.
func TestShardWriterCloseFailureLeavesNoOrphans(t *testing.T) {
	ds := genShardDS(t, 0.02, 5)
	write := func(t *testing.T, dir string) *trace.ShardWriter {
		t.Helper()
		w, err := trace.NewShardWriter(dir, "orphan", ds.POIs, trace.ShardOptions{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range ds.Users {
			if err := w.WriteUser(u); err != nil {
				t.Fatal(err)
			}
		}
		return w
	}

	t.Run("mid-rename", func(t *testing.T) {
		dir := t.TempDir()
		w := write(t, dir)
		// Shard 0 renames fine; shard 1's target is obstructed.
		if err := os.Mkdir(filepath.Join(dir, "orphan-0001.bin"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err == nil {
			t.Fatal("Close succeeded with an obstructed shard path")
		}
		if left := leftovers(t, dir); len(left) != 0 {
			t.Fatalf("failed Close left orphans: %v", left)
		}
	})

	t.Run("manifest-write", func(t *testing.T) {
		dir := t.TempDir()
		w := write(t, dir)
		// Every shard renames fine; the manifest publish is obstructed.
		if err := os.Mkdir(filepath.Join(dir, "orphan"+trace.ManifestSuffix), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err == nil {
			t.Fatal("Close succeeded with an obstructed manifest path")
		}
		if left := leftovers(t, dir); len(left) != 0 {
			t.Fatalf("failed Close left orphans: %v", left)
		}
	})
}

// TestOpenShardSetFromDirectory resolves the manifest from a directory
// and rejects ambiguous or manifest-less directories.
func TestOpenShardSetFromDirectory(t *testing.T) {
	ds := genShardDS(t, 0.02, 7)
	dir := t.TempDir()
	if _, err := ds.SaveShards(dir, trace.ShardOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	ss, err := trace.OpenShardSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Manifest.Name != ds.Name {
		t.Fatalf("resolved manifest for %q, want %q", ss.Manifest.Name, ds.Name)
	}
	if _, err := trace.OpenShardSet(t.TempDir()); err == nil {
		t.Error("directory without a manifest accepted")
	}
	// A second manifest makes the directory ambiguous.
	second := filepath.Join(dir, "other"+trace.ManifestSuffix)
	if err := os.WriteFile(second, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.OpenShardSet(dir); err == nil {
		t.Error("directory with two manifests accepted")
	}
}

// mutateManifest loads, edits and rewrites a manifest document.
func mutateManifest(t *testing.T, path string, edit func(m *trace.Manifest)) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m trace.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	edit(&m)
	out, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestShardSetRejectsInconsistencies covers manifest-vs-shard mismatch
// and corruption: missing shard files, tampered checksums and names,
// wrong user counts, and corrupt shard bytes.
func TestShardSetRejectsInconsistencies(t *testing.T) {
	ds := genShardDS(t, 0.03, 9)
	newSet := func(t *testing.T) (string, *trace.ShardSet) {
		t.Helper()
		dir := t.TempDir()
		manifest, err := ds.SaveShards(dir, trace.ShardOptions{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		ss, err := trace.OpenShardSet(manifest)
		if err != nil {
			t.Fatal(err)
		}
		return manifest, ss
	}

	t.Run("missing shard file", func(t *testing.T) {
		manifest, ss := newSet(t)
		if err := os.Remove(filepath.Join(filepath.Dir(manifest), ss.Manifest.Shards[1].File)); err != nil {
			t.Fatal(err)
		}
		if _, err := ss.OpenShard(1); err == nil {
			t.Error("missing shard file accepted")
		}
	})

	t.Run("user count sum mismatch", func(t *testing.T) {
		manifest, _ := newSet(t)
		mutateManifest(t, manifest, func(m *trace.Manifest) { m.Shards[0].Users++ })
		if _, err := trace.OpenShardSet(manifest); err == nil {
			t.Error("manifest with wrong user arithmetic accepted")
		}
	})

	t.Run("per-shard count mismatch", func(t *testing.T) {
		// Consistent arithmetic, but the counts disagree with the shard
		// trailers: caught at the shard's end of stream.
		manifest, _ := newSet(t)
		mutateManifest(t, manifest, func(m *trace.Manifest) {
			m.Shards[0].Users++
			m.Shards[1].Users--
		})
		ss, err := trace.OpenShardSet(manifest)
		if err != nil {
			t.Fatal(err)
		}
		r, err := ss.OpenShard(0)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		for {
			_, err := r.Next()
			if err == io.EOF {
				t.Error("shard shorter than manifest count accepted")
				break
			}
			if err != nil {
				if !strings.Contains(err.Error(), "manifest") {
					t.Errorf("unexpected error: %v", err)
				}
				break
			}
		}
	})

	t.Run("POI checksum mismatch", func(t *testing.T) {
		manifest, _ := newSet(t)
		mutateManifest(t, manifest, func(m *trace.Manifest) { m.POIChecksum = "sha256:beef" })
		ss, err := trace.OpenShardSet(manifest)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ss.OpenShard(0); err == nil {
			t.Error("shard with mismatched POI checksum accepted")
		}
	})

	t.Run("name mismatch", func(t *testing.T) {
		manifest, _ := newSet(t)
		mutateManifest(t, manifest, func(m *trace.Manifest) { m.Name = "impostor" })
		ss, err := trace.OpenShardSet(manifest)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ss.OpenShard(0); err == nil {
			t.Error("shard with mismatched dataset name accepted")
		}
	})

	t.Run("unsafe shard path", func(t *testing.T) {
		manifest, _ := newSet(t)
		mutateManifest(t, manifest, func(m *trace.Manifest) { m.Shards[0].File = "../escape.bin" })
		if _, err := trace.OpenShardSet(manifest); err == nil {
			t.Error("manifest with path traversal accepted")
		}
	})

	t.Run("truncated shard", func(t *testing.T) {
		manifest, ss := newSet(t)
		path := filepath.Join(filepath.Dir(manifest), ss.Manifest.Shards[0].File)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := ss.OpenShard(0)
		if err != nil {
			return // caught at open: fine
		}
		defer r.Close()
		for {
			_, err := r.Next()
			if err == io.EOF {
				t.Error("truncated shard decoded cleanly")
				return
			}
			if err != nil {
				return // rejected, as it must be
			}
		}
	})

	t.Run("corrupt shard header", func(t *testing.T) {
		manifest, ss := newSet(t)
		path := filepath.Join(filepath.Dir(manifest), ss.Manifest.Shards[0].File)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[0] ^= 0xff // breaks the GSB1 magic
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ss.OpenShard(0); err == nil {
			t.Error("shard with corrupt magic accepted")
		}
	})

	t.Run("not a manifest", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "data"+trace.ManifestSuffix)
		if err := os.WriteFile(path, []byte(`{"format":"something-else"}`), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := trace.OpenShardSet(path); err == nil {
			t.Error("non-manifest JSON accepted")
		}
	})
}

// TestSourceFrames pins the adapter: an in-memory source seen through
// SourceFrames yields the same users as direct iteration.
func TestSourceFrames(t *testing.T) {
	ds := genShardDS(t, 0.02, 13)
	fs := trace.SourceFrames(ds.Source())
	for i := 0; ; i++ {
		f, err := fs.NextFrame()
		if err == io.EOF {
			if i != len(ds.Users) {
				t.Fatalf("adapter yielded %d users, want %d", i, len(ds.Users))
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		u, err := fs.DecodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if u != ds.Users[i] {
			t.Fatalf("frame %d decoded to user %d, want %d", i, u.ID, ds.Users[i].ID)
		}
	}
}

// TestStreamReaderFramePath pins the two-stage API against the serial
// Next path: NextFrame+DecodeFrame yields the same users.
func TestStreamReaderFramePath(t *testing.T) {
	ds := genShardDS(t, 0.02, 17)
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	sr, err := trace.NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		f, err := sr.NextFrame()
		if err == io.EOF {
			if i != len(ds.Users) {
				t.Fatalf("frame path yielded %d users, want %d", i, len(ds.Users))
			}
			if sr.Users() != len(ds.Users) {
				t.Fatalf("reader counts %d users, want %d", sr.Users(), len(ds.Users))
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		u, err := sr.DecodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(u, ds.Users[i]) {
			t.Fatalf("frame %d decodes differently from the dataset user", i)
		}
	}
}
