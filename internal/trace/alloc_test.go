// The race detector's sync.Pool deliberately drops a fraction of Puts
// to shake out lifecycle bugs, so a zero-alloc pool assertion cannot
// hold under -race; the test runs in regular builds only.
//
//go:build !race

package trace

import (
	"bytes"
	"io"
	"runtime/debug"
	"testing"
)

// TestDecodeFrameSteadyStateAllocs pins the hot-path allocation budget:
// once a consumer recycles decoded users, DecodeFrame on an in-memory
// stream must not allocate at all — the pooled record is refilled in
// place, checkin POI names resolve through the intern table, and truth
// labels come from the label table.
func TestDecodeFrameSteadyStateAllocs(t *testing.T) {
	// sync.Pool contents may be dropped by a garbage collection between
	// runs; disable collection so the measurement sees the steady state
	// the pool is designed for.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	var buf bytes.Buffer
	if err := testDataset().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStreamReaderBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// In-memory frames are subslices of the backing data, so they can be
	// fetched once and decoded repeatedly.
	var frames []Frame
	for {
		f, err := sr.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if len(frames) != len(testDataset().Users) {
		t.Fatalf("fetched %d frames, want %d", len(frames), len(testDataset().Users))
	}

	// Warm the record pool and slice capacities.
	for _, f := range frames {
		u, err := sr.DecodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		sr.RecycleUser(u)
	}

	allocs := testing.AllocsPerRun(200, func() {
		for _, f := range frames {
			u, err := sr.DecodeFrame(f)
			if err != nil {
				t.Fatal(err)
			}
			sr.RecycleUser(u)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecodeFrame: %v allocs per run, want 0", allocs)
	}
}
