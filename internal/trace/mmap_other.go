//go:build !linux

package trace

import "os"

// mmapFile is unsupported on this platform; callers fall back to
// buffered streaming.
func mmapFile(f *os.File) ([]byte, func() error, error) {
	return nil, nil, errMmapUnsupported
}
