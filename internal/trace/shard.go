package trace

// Sharded corpora: a dataset split across N independent binary shard
// files plus a small JSON manifest. Each shard is a complete GSB1
// stream (own header, POI table, trailer), so any single shard is
// readable by the ordinary StreamReader and shards can be validated
// concurrently with no coordination beyond the manifest. The manifest
// binds the set together: the dataset name, a checksum of the shared
// POI table (every shard must carry a byte-identical table), the total
// user count and the per-shard user counts.
//
// Layout for a corpus named "primary" with 3 shards:
//
//	primary-0000.bin[.gz]
//	primary-0001.bin[.gz]
//	primary-0002.bin[.gz]
//	primary.manifest.json
//
// ShardWriter assigns each user to the shard with the fewest encoded
// bytes so far (ties to the lowest index), which keeps shard sizes
// balanced even when user traces vary wildly in length. The assignment
// depends only on the user order and their encodings, so a corpus
// written twice from the same dataset is byte-identical.

import (
	"compress/gzip"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"geosocial/internal/poi"
)

// ManifestSuffix is the conventional file-name suffix of a shard-set
// manifest ("primary" + ManifestSuffix).
const ManifestSuffix = ".manifest.json"

// manifestFormat is the format marker inside a manifest document.
const manifestFormat = "gsb1-shards"

// manifestVersion is the current manifest schema version.
const manifestVersion = 1

// ShardInfo describes one shard file of a sharded corpus.
type ShardInfo struct {
	// File is the shard file name, relative to the manifest's directory.
	File string `json:"file"`
	// Users is the number of user frames in the shard.
	Users int `json:"users"`
	// Bytes is the uncompressed encoded size of the shard stream.
	Bytes int64 `json:"bytes"`
	// Delta marks an append-container shard: its frames carry the data
	// appended in one generation — new trailing GPS fixes / checkins for
	// users that already exist in earlier shards, or complete new users.
	// Delta shards are ordinary GSB1 streams; only their interpretation
	// differs (frames are folded onto earlier frames, see FoldUser).
	Delta bool `json:"delta,omitempty"`
	// Generation is the append generation that produced this shard
	// (>= 1 for delta shards, 0 for base shards).
	Generation int `json:"generation,omitempty"`
	// NewUsers is the number of frames in this delta shard whose user ID
	// does not occur in any earlier shard of the set; only those count
	// toward the manifest's total user count.
	NewUsers int `json:"new_users,omitempty"`
}

// Manifest is the shard-set descriptor stored next to the shard files.
type Manifest struct {
	// Format is the manifest format marker, always "gsb1-shards".
	Format string `json:"format"`
	// Version is the manifest schema version.
	Version int `json:"version"`
	// Name is the dataset name; every shard header must carry it too.
	Name string `json:"name"`
	// POIChecksum is the checksum of the encoded POI table shared by
	// every shard (see POIChecksum).
	POIChecksum string `json:"poi_checksum"`
	// Users is the total distinct user count across all shards: base
	// shards contribute their frame counts, delta shards only the frames
	// introducing users unseen in earlier shards (ShardInfo.NewUsers).
	Users int `json:"users"`
	// Shards lists the shard files in index order. Delta shards always
	// follow every shard of earlier generations.
	Shards []ShardInfo `json:"shards"`
	// Generation counts the appends applied to the set: 0 for a freshly
	// written corpus, incremented by one for each AppendWriter session.
	Generation int `json:"generation,omitempty"`
	// Supersedes is the checksum ("sha256:<hex>") of the manifest file
	// this one atomically replaced, forming an audit chain of appends.
	// Empty for generation 0.
	Supersedes string `json:"supersedes,omitempty"`
}

// POIChecksum fingerprints a POI table: sha256 over the table's binary
// header encoding. Two tables agree on the checksum iff their header
// encodings are byte-identical, which is the invariant a shard set
// needs — every shard must decode checkins against the same venues.
func POIChecksum(pois []poi.POI) string {
	var e frameEnc
	e.uvarint(uint64(len(pois)))
	for _, p := range pois {
		e.str(p.Name)
		e.varint(int64(p.Category))
		e.latlon(p.Loc)
		e.f64(p.Popularity)
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(e.buf))
}

// ShardOptions configures NewShardWriter.
type ShardOptions struct {
	// Shards is the number of shard files (must be >= 1).
	Shards int
	// Compress gzip-compresses each shard file (and appends ".gz" to the
	// shard file names).
	Compress bool
}

// shardFile is one open shard of a ShardWriter.
type shardFile struct {
	f     *os.File
	tmp   string // temp path the bytes go to until Close renames it
	final string // final file name, relative to the writer's directory
	gz    *gzip.Writer
	sw    *StreamWriter
}

// ShardWriter writes a sharded binary corpus: N shard files plus a
// manifest. Users are validated exactly as StreamWriter validates them,
// with duplicate-ID detection across the whole set. Bytes go to
// temporary files which Close renames into place before writing the
// manifest last, so a complete manifest on disk always describes
// complete shards.
type ShardWriter struct {
	dir         string
	name        string
	poiChecksum string
	seen        map[int]struct{}
	shards      []*shardFile
	closed      bool
}

// NewShardWriter creates the shard files for a corpus of opts.Shards
// shards in dir and writes their stream headers.
func NewShardWriter(dir, name string, pois []poi.POI, opts ShardOptions) (*ShardWriter, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("trace: shard writer: %d shards (need >= 1)", opts.Shards)
	}
	if name == "" {
		return nil, fmt.Errorf("trace: shard writer: empty corpus name")
	}
	w := &ShardWriter{
		dir:         dir,
		name:        name,
		poiChecksum: POIChecksum(pois),
		seen:        make(map[int]struct{}),
	}
	for i := 0; i < opts.Shards; i++ {
		final := fmt.Sprintf("%s-%04d%s", name, i, FormatBinary.Ext())
		if opts.Compress {
			final += ".gz"
		}
		f, err := createTemp(filepath.Join(dir, final))
		if err != nil {
			w.discard()
			return nil, fmt.Errorf("trace: shard writer: %w", err)
		}
		sf := &shardFile{f: f, tmp: f.Name(), final: final}
		w.shards = append(w.shards, sf)
		var sink io.Writer = f
		if opts.Compress {
			sf.gz = gzip.NewWriter(f)
			sink = sf.gz
		}
		if sf.sw, err = NewStreamWriter(sink, name, pois); err != nil {
			w.discard()
			return nil, err
		}
	}
	return w, nil
}

// WriteUser validates the user and appends it to the currently smallest
// shard (ties go to the lowest shard index). The assignment is a pure
// function of the users written so far, so output is deterministic.
func (w *ShardWriter) WriteUser(u *User) error {
	if w.closed {
		return fmt.Errorf("trace: shard writer: writer closed")
	}
	if _, dup := w.seen[u.ID]; dup {
		return fmt.Errorf("trace: shard writer: duplicate user ID %d", u.ID)
	}
	best := 0
	for i, sf := range w.shards {
		if sf.sw.Bytes() < w.shards[best].sw.Bytes() {
			best = i
		}
	}
	if err := w.shards[best].sw.WriteUser(u); err != nil {
		return err
	}
	w.seen[u.ID] = struct{}{}
	return nil
}

// ManifestPath returns the path the manifest is written to by Close.
func (w *ShardWriter) ManifestPath() string {
	return filepath.Join(w.dir, w.name+ManifestSuffix)
}

// Close finishes every shard stream (sentinel, trailer, flush), renames
// the shard files into place, and writes the manifest last. On error
// the temporary files are removed and no manifest is written.
func (w *ShardWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	m := Manifest{
		Format:  manifestFormat,
		Version: manifestVersion,
		Name:    w.name,
	}
	for _, sf := range w.shards {
		if err := sf.sw.Close(); err != nil {
			w.discard()
			return err
		}
		if sf.gz != nil {
			if err := sf.gz.Close(); err != nil {
				w.discard()
				return fmt.Errorf("trace: shard writer: %w", err)
			}
		}
		if err := sf.f.Close(); err != nil {
			w.discard()
			return fmt.Errorf("trace: shard writer: %w", err)
		}
		sf.f = nil
		m.Shards = append(m.Shards, ShardInfo{
			File:  sf.final,
			Users: sf.sw.Users(),
			Bytes: sf.sw.Bytes(),
		})
		m.Users += sf.sw.Users()
	}
	// All streams are complete; move them into place, then publish the
	// manifest last, so a manifest on disk always describes complete
	// shards. A failure anywhere past the first rename must also undo
	// the renames already done: without a manifest the final files are
	// unreachable, and discard only knows about temp paths.
	var renamed []string
	undo := func() {
		w.discard()
		for _, p := range renamed {
			os.Remove(p)
		}
	}
	for _, sf := range w.shards {
		final := filepath.Join(w.dir, sf.final)
		if err := os.Rename(sf.tmp, final); err != nil {
			undo()
			return fmt.Errorf("trace: shard writer: %w", err)
		}
		sf.tmp = ""
		renamed = append(renamed, final)
	}
	m.POIChecksum = w.poiChecksum
	if err := writeManifest(w.ManifestPath(), &m); err != nil {
		undo()
		return err
	}
	return nil
}

// discard closes and removes any temporary shard files (error path).
func (w *ShardWriter) discard() {
	w.closed = true
	for _, sf := range w.shards {
		if sf.f != nil {
			sf.f.Close()
			sf.f = nil
		}
		if sf.tmp != "" {
			os.Remove(sf.tmp)
			sf.tmp = ""
		}
	}
}

// writeManifest atomically writes the manifest JSON to path.
func writeManifest(path string, m *Manifest) error {
	f, err := createTemp(path)
	if err != nil {
		return fmt.Errorf("trace: write manifest: %w", err)
	}
	tmp := f.Name()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("trace: write manifest: %w", err)
	}
	// The manifest's bytes must reach the disk before the rename can
	// publish the name: a crash after an unsynced rename could leave
	// the name pointing at lost content, and the manifest is the one
	// file whose loss makes the whole set unreadable.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("trace: write manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: write manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: write manifest: %w", err)
	}
	return nil
}

// SaveShards writes the dataset as a sharded binary corpus in dir and
// returns the manifest path. The dataset is validated as a side effect;
// coordinates are quantized to the E7 grid exactly as SaveFile's binary
// path does.
func (d *Dataset) SaveShards(dir string, opts ShardOptions) (string, error) {
	w, err := NewShardWriter(dir, d.Name, d.POIs, opts)
	if err != nil {
		return "", err
	}
	for _, u := range d.Users {
		if err := w.WriteUser(u); err != nil {
			w.discard()
			return "", err
		}
	}
	if err := w.Close(); err != nil {
		return "", err
	}
	return w.ManifestPath(), nil
}

// ShardSet is an opened shard-set manifest: the parsed, internally
// consistent manifest plus the directory its shard files resolve
// against. OpenShard gives streaming access to one shard.
type ShardSet struct {
	// Manifest is the validated manifest document.
	Manifest Manifest
	// Dir is the directory shard file names resolve against.
	Dir string
}

// OpenShardSet opens a sharded corpus from a manifest path or from a
// directory containing exactly one "*.manifest.json". It validates the
// manifest document (format marker, shard list, user-count arithmetic,
// sane file names); per-shard header and trailer validation happens as
// each shard is opened and read.
func OpenShardSet(path string) (*ShardSet, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open shard set: %w", err)
	}
	if info.IsDir() {
		path, err = findManifest(path)
		if err != nil {
			return nil, err
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open shard set: %w", err)
	}
	m, err := parseManifest(raw, path)
	if err != nil {
		return nil, err
	}
	return &ShardSet{Manifest: *m, Dir: filepath.Dir(path)}, nil
}

// parseManifest decodes and validates a manifest document. It is a pure
// function of the bytes (path only labels errors), which is what the
// manifest fuzz target exercises.
func parseManifest(raw []byte, path string) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("trace: open shard set %s: %w", path, err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("trace: %s: not a shard manifest (format %q)", path, m.Format)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("trace: %s: unsupported manifest version %d (have %d)", path, m.Version, manifestVersion)
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("trace: %s: manifest lists no shards", path)
	}
	if m.Generation < 0 {
		return nil, fmt.Errorf("trace: %s: negative manifest generation %d", path, m.Generation)
	}
	total, maxGen, prevGen := 0, 0, 0
	for i, s := range m.Shards {
		if s.File == "" || filepath.IsAbs(s.File) || strings.Contains(s.File, "..") {
			return nil, fmt.Errorf("trace: %s: shard %d has unsafe file name %q", path, i, s.File)
		}
		if s.Users < 0 {
			return nil, fmt.Errorf("trace: %s: shard %d has negative user count", path, i)
		}
		if s.Delta {
			if s.Generation < 1 {
				return nil, fmt.Errorf("trace: %s: delta shard %d has generation %d (need >= 1)", path, i, s.Generation)
			}
			if s.NewUsers < 0 || s.NewUsers > s.Users {
				return nil, fmt.Errorf("trace: %s: delta shard %d claims %d new users of %d frames", path, i, s.NewUsers, s.Users)
			}
			total += s.NewUsers
		} else {
			if s.Generation != 0 || s.NewUsers != 0 {
				return nil, fmt.Errorf("trace: %s: base shard %d carries delta fields", path, i)
			}
			if maxGen > 0 {
				return nil, fmt.Errorf("trace: %s: base shard %d listed after a delta shard", path, i)
			}
			total += s.Users
		}
		// Delta shards must appear in non-decreasing generation order so
		// "shard-list order" and "generation order" agree for folding.
		if s.Generation < prevGen {
			return nil, fmt.Errorf("trace: %s: shard %d generation %d after generation %d", path, i, s.Generation, prevGen)
		}
		prevGen = s.Generation
		if s.Generation > maxGen {
			maxGen = s.Generation
		}
	}
	if maxGen != m.Generation {
		return nil, fmt.Errorf("trace: %s: manifest generation %d but shard generations reach %d", path, m.Generation, maxGen)
	}
	if total != m.Users {
		return nil, fmt.Errorf("trace: %s: shard user counts sum to %d, manifest says %d", path, total, m.Users)
	}
	return &m, nil
}

// findManifest locates the single "*.manifest.json" inside dir.
func findManifest(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("trace: open shard set: %w", err)
	}
	var found []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ManifestSuffix) {
			found = append(found, filepath.Join(dir, e.Name()))
		}
	}
	switch len(found) {
	case 0:
		return "", fmt.Errorf("trace: no %s manifest in %s", ManifestSuffix, dir)
	case 1:
		return found[0], nil
	default:
		return "", fmt.Errorf("trace: %d manifests in %s, name one explicitly", len(found), dir)
	}
}

// ShardReader streams one shard of a shard set. It is a FrameSource
// whose end-of-stream additionally verifies the shard against the
// manifest (user count); the header was verified against the manifest
// at open time (name and POI checksum).
type ShardReader struct {
	sr      *StreamReader
	closers []func() error
	seen    map[int]struct{}
	want    int
}

// OpenShard opens shard i for streaming and verifies its header carries
// the manifest's dataset name and an identical POI table.
func (ss *ShardSet) OpenShard(i int) (*ShardReader, error) {
	if i < 0 || i >= len(ss.Manifest.Shards) {
		return nil, fmt.Errorf("trace: shard %d out of range (set has %d)", i, len(ss.Manifest.Shards))
	}
	info := ss.Manifest.Shards[i]
	path := filepath.Join(ss.Dir, info.File)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open shard %s: %w", info.File, err)
	}
	var sr *StreamReader
	var closers []func() error
	if msr, unmap, ok, merr := openMapped(f); merr != nil {
		f.Close()
		return nil, fmt.Errorf("trace: shard %s: %w", info.File, merr)
	} else if ok {
		sr = msr
		closers = []func() error{unmap.Close, f.Close}
	}
	fail := func(err error) (*ShardReader, error) {
		for _, c := range closers {
			c()
		}
		return nil, err
	}
	if sr == nil {
		br, gz, err := sniffReader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("trace: open shard %s: %w", info.File, err)
		}
		closers = []func() error{f.Close}
		if gz != nil {
			closers = []func() error{gz.Close, f.Close}
		}
		if sr, err = NewStreamReader(br); err != nil {
			return fail(fmt.Errorf("trace: shard %s: %w", info.File, err))
		}
	}
	if sr.Name() != ss.Manifest.Name {
		return fail(fmt.Errorf("trace: shard %s: dataset name %q, manifest says %q", info.File, sr.Name(), ss.Manifest.Name))
	}
	if sum := POIChecksum(sr.POIs()); sum != ss.Manifest.POIChecksum {
		return fail(fmt.Errorf("trace: shard %s: POI table checksum %s, manifest says %s", info.File, sum, ss.Manifest.POIChecksum))
	}
	return &ShardReader{sr: sr, closers: closers, want: info.Users}, nil
}

// POIs returns the shard's decoded POI table (identical across the set,
// as enforced by the manifest checksum). The slice is owned by the
// reader; callers must not mutate it.
func (r *ShardReader) POIs() []poi.POI { return r.sr.POIs() }

// NextFrame fetches the next raw frame; at the verified end of the
// stream it additionally checks the frame count against the manifest
// before reporting io.EOF.
func (r *ShardReader) NextFrame() (Frame, error) {
	f, err := r.sr.NextFrame()
	if err == nil {
		return f, nil
	}
	if err == io.EOF && r.sr.Users() != r.want {
		return Frame{}, fmt.Errorf("trace: shard has %d users, manifest says %d", r.sr.Users(), r.want)
	}
	return Frame{}, err
}

// DecodeFrame decodes and validates one frame (see StreamReader.DecodeFrame).
func (r *ShardReader) DecodeFrame(f Frame) (*User, error) { return r.sr.DecodeFrame(f) }

// Recycle returns an undecoded frame's buffer to the shard reader's
// pool (see StreamReader.Recycle).
func (r *ShardReader) Recycle(f Frame) { r.sr.Recycle(f) }

// RecycleUser returns a consumed user record to the shard reader's pool
// (see StreamReader.RecycleUser and the UserRecycler contract).
func (r *ShardReader) RecycleUser(u *User) { r.sr.RecycleUser(u) }

// Next decodes the next user serially (NextFrame + DecodeFrame plus a
// reader-local duplicate check), so a single shard can also be read as
// a plain UserSource.
func (r *ShardReader) Next() (*User, error) {
	f, err := r.NextFrame()
	if err != nil {
		return nil, err
	}
	u, err := r.sr.DecodeFrame(f)
	if err != nil {
		return nil, err
	}
	if r.seen == nil {
		r.seen = make(map[int]struct{})
	}
	if _, dup := r.seen[u.ID]; dup {
		return nil, fmt.Errorf("trace: invalid shard: duplicate user ID %d", u.ID)
	}
	r.seen[u.ID] = struct{}{}
	return u, nil
}

// Close releases the shard's file handles. Safe to call more than once.
func (r *ShardReader) Close() error {
	var first error
	for _, c := range r.closers {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	r.closers = nil
	return first
}
