// Package poi models points of interest (POIs) — the venues users visit
// and check in at. It provides the nine Foursquare top-level categories the
// paper uses for its Figure 4 breakdown, a POI database with spatial
// indexing, and a synthetic city generator that places POIs into
// downtown/suburb clusters with Zipf-distributed popularity.
package poi

import (
	"fmt"

	"geosocial/internal/geo"
)

// Category is a Foursquare top-level POI category. The paper breaks
// missing checkins down over these nine categories (Figure 4).
type Category int

// The nine Foursquare top-level categories, in the paper's Figure 4
// display order.
const (
	Professional Category = iota
	Outdoors
	Nightlife
	Arts
	Shop
	Travel
	Residence
	Food
	College
	numCategories
)

// NumCategories is the number of POI categories.
const NumCategories = int(numCategories)

var categoryNames = [...]string{
	"Professional", "Outdoors", "Nightlife", "Arts", "Shop",
	"Travel", "Residence", "Food", "College",
}

// String implements fmt.Stringer.
func (c Category) String() string {
	if c < 0 || int(c) >= NumCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Valid reports whether c is one of the nine known categories.
func (c Category) Valid() bool { return c >= 0 && int(c) < NumCategories }

// Categories returns all nine categories in display order.
func Categories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// CategoryNames returns the nine category names in display order.
func CategoryNames() []string {
	return append([]string(nil), categoryNames[:]...)
}

// ParseCategory converts a name produced by Category.String back to a
// Category.
func ParseCategory(name string) (Category, error) {
	for i, n := range categoryNames {
		if n == name {
			return Category(i), nil
		}
	}
	return 0, fmt.Errorf("poi: unknown category %q", name)
}

// Routine reports whether the category is a "boring or routine" place in
// the paper's sense (§4.2): locations tied to daily routine — work,
// shopping, eating, home, campus — where users typically do not bother to
// check in. These categories dominate missing checkins.
func (c Category) Routine() bool {
	switch c {
	case Professional, Shop, Food, Residence, College:
		return true
	default:
		return false
	}
}

// POI is a point of interest.
type POI struct {
	ID       int        `json:"id"`
	Name     string     `json:"name"`
	Category Category   `json:"category"`
	Loc      geo.LatLon `json:"loc"`
	// Popularity is the relative visit attractiveness used by the
	// synthetic world; higher is more visited. It is Zipf-distributed
	// over the city and plays no role in analysis code.
	Popularity float64 `json:"popularity,omitempty"`
}

// DB is an immutable collection of POIs with spatial and ID lookup.
type DB struct {
	pois []POI
	grid *geo.GridIndex
}

// NewDB builds a database over the given POIs. POI IDs must be unique and
// equal to their index (the synthetic generator guarantees this; loaders
// should renumber otherwise).
func NewDB(pois []POI) (*DB, error) {
	pts := make([]geo.LatLon, len(pois))
	for i, p := range pois {
		if p.ID != i {
			return nil, fmt.Errorf("poi: POI at index %d has ID %d (must equal index)", i, p.ID)
		}
		if !p.Loc.Valid() {
			return nil, fmt.Errorf("poi: POI %d has invalid location %v", p.ID, p.Loc)
		}
		if !p.Category.Valid() {
			return nil, fmt.Errorf("poi: POI %d has invalid category %d", p.ID, int(p.Category))
		}
		pts[i] = p.Loc
	}
	return &DB{pois: append([]POI(nil), pois...), grid: geo.NewGridIndex(pts, 500)}, nil
}

// Len returns the number of POIs.
func (db *DB) Len() int { return len(db.pois) }

// Get returns the POI with the given ID.
func (db *DB) Get(id int) (POI, error) {
	if id < 0 || id >= len(db.pois) {
		return POI{}, fmt.Errorf("poi: no POI with ID %d", id)
	}
	return db.pois[id], nil
}

// All returns a copy of all POIs.
func (db *DB) All() []POI { return append([]POI(nil), db.pois...) }

// Within appends the IDs of POIs within radius meters of q to dst.
func (db *DB) Within(q geo.LatLon, radius float64, dst []int) []int {
	return db.grid.Within(q, radius, dst)
}

// Nearest returns the POI nearest to q and its distance in meters. The
// boolean is false when the database is empty.
func (db *DB) Nearest(q geo.LatLon) (POI, float64, bool) {
	idx, dist := db.grid.Nearest(q)
	if idx < 0 {
		return POI{}, 0, false
	}
	return db.pois[idx], dist, true
}
