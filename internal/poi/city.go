package poi

import (
	"fmt"
	"math"
	"sort"

	"geosocial/internal/geo"
	"geosocial/internal/rng"
)

// CityConfig parameterizes the synthetic city generator.
type CityConfig struct {
	// Center is the city center coordinate.
	Center geo.LatLon
	// RadiusMeters bounds POI placement around the center.
	RadiusMeters float64
	// POICount is the total number of POIs to place.
	POICount int
	// ClusterCount is the number of density clusters (downtown, malls,
	// campus, …). POIs concentrate around cluster centers.
	ClusterCount int
	// ClusterSigma is the Gaussian spread of POIs around their cluster
	// center, in meters.
	ClusterSigma float64
	// ZipfExponent shapes POI popularity (visit attractiveness); 1.0
	// gives classic Zipf. Must be >= 0.
	ZipfExponent float64
}

// DefaultCityConfig returns the configuration used by the Primary dataset:
// a Santa Barbara–sized city, ~1200 venues in 12 clusters.
func DefaultCityConfig() CityConfig {
	return CityConfig{
		Center:       geo.LatLon{Lat: 34.4208, Lon: -119.6982},
		RadiusMeters: 15000,
		POICount:     1200,
		ClusterCount: 12,
		ClusterSigma: 700,
		ZipfExponent: 1.0,
	}
}

// categoryMix is the fraction of venues per category in the synthetic
// city. Food/Shop/Professional dominate, as in real Foursquare venue
// databases; Residence is substantial because home locations are venues
// too.
var categoryMix = map[Category]float64{
	Food:         0.22,
	Shop:         0.18,
	Professional: 0.16,
	Residence:    0.14,
	Travel:       0.07,
	Nightlife:    0.07,
	Outdoors:     0.06,
	Arts:         0.05,
	College:      0.05,
}

// GenerateCity builds a synthetic city POI database. Generation is
// deterministic given the stream.
func GenerateCity(cfg CityConfig, s *rng.Stream) (*DB, error) {
	if cfg.POICount <= 0 {
		return nil, fmt.Errorf("poi: POICount must be positive, got %d", cfg.POICount)
	}
	if cfg.ClusterCount <= 0 {
		return nil, fmt.Errorf("poi: ClusterCount must be positive, got %d", cfg.ClusterCount)
	}
	if cfg.RadiusMeters <= 0 {
		return nil, fmt.Errorf("poi: RadiusMeters must be positive, got %g", cfg.RadiusMeters)
	}

	// Place cluster centers uniformly in the disk (sqrt for area
	// uniformity), with cluster 0 pinned at the center as "downtown".
	centers := make([]geo.LatLon, cfg.ClusterCount)
	centers[0] = cfg.Center
	for i := 1; i < cfg.ClusterCount; i++ {
		bearing := s.Range(0, 360)
		dist := cfg.RadiusMeters * 0.9 * math.Sqrt(s.Float64())
		centers[i] = geo.Destination(cfg.Center, bearing, dist)
	}

	// Category sampling table.
	cats := Categories()
	cum := make([]float64, len(cats))
	total := 0.0
	for i, c := range cats {
		total += categoryMix[c]
		cum[i] = total
	}

	pois := make([]POI, cfg.POICount)
	for i := range pois {
		// Downtown is denser: cluster 0 gets a triple share.
		ci := s.Intn(cfg.ClusterCount + 2)
		if ci >= cfg.ClusterCount {
			ci = 0
		}
		loc := geo.Destination(centers[ci], s.Range(0, 360), math.Abs(s.Norm(0, cfg.ClusterSigma)))
		// Category by mix.
		u := s.Float64() * total
		cat := cats[len(cats)-1]
		for j, c := range cum {
			if u < c {
				cat = cats[j]
				break
			}
		}
		pois[i] = POI{
			ID:       i,
			Name:     fmt.Sprintf("%s #%d", cat, i),
			Category: cat,
			Loc:      loc,
		}
	}

	// Popularity ranks: Zipf weights assigned with a bias toward the
	// city center, matching real cities where the hot venues concentrate
	// downtown. Each POI draws a score shrunk by proximity to downtown;
	// ascending score order receives descending popularity.
	type scored struct {
		idx   int
		score float64
	}
	sc := make([]scored, cfg.POICount)
	for i, p := range pois {
		d := geo.Distance(cfg.Center, p.Loc)
		sc[i] = scored{idx: i, score: s.Float64() * (1 + d/2500)}
	}
	sort.Slice(sc, func(a, b int) bool { return sc[a].score < sc[b].score })
	for rank, e := range sc {
		pois[e.idx].Popularity = 1.0 / math.Pow(float64(rank+1), cfg.ZipfExponent)
	}
	return NewDB(pois)
}
