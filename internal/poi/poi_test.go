package poi

import (
	"math"
	"testing"

	"geosocial/internal/geo"
	"geosocial/internal/rng"
)

func TestCategoryString(t *testing.T) {
	if Professional.String() != "Professional" || College.String() != "College" {
		t.Error("category names wrong")
	}
	if got := Category(99).String(); got != "Category(99)" {
		t.Errorf("out-of-range = %q", got)
	}
}

func TestCategoryParseRoundTrip(t *testing.T) {
	for _, c := range Categories() {
		got, err := ParseCategory(c.String())
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if got != c {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
	if _, err := ParseCategory("Nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestCategoriesComplete(t *testing.T) {
	if len(Categories()) != 9 || NumCategories != 9 {
		t.Fatalf("expected 9 categories, got %d", len(Categories()))
	}
	if len(CategoryNames()) != 9 {
		t.Fatal("names incomplete")
	}
	for _, c := range Categories() {
		if !c.Valid() {
			t.Errorf("%v invalid", c)
		}
	}
	if Category(-1).Valid() || Category(9).Valid() {
		t.Error("out-of-range valid")
	}
}

func TestRoutineCategories(t *testing.T) {
	routine := map[Category]bool{
		Professional: true, Shop: true, Food: true, Residence: true, College: true,
	}
	for _, c := range Categories() {
		if got := c.Routine(); got != routine[c] {
			t.Errorf("Routine(%v) = %v", c, got)
		}
	}
}

func TestNewDBValidation(t *testing.T) {
	base := geo.LatLon{Lat: 34, Lon: -119}
	good := []POI{
		{ID: 0, Category: Food, Loc: base},
		{ID: 1, Category: Shop, Loc: geo.Destination(base, 0, 100)},
	}
	if _, err := NewDB(good); err != nil {
		t.Fatalf("valid POIs rejected: %v", err)
	}
	for name, pois := range map[string][]POI{
		"bad id":       {{ID: 5, Category: Food, Loc: base}},
		"bad loc":      {{ID: 0, Category: Food, Loc: geo.LatLon{Lat: 99, Lon: 0}}},
		"bad category": {{ID: 0, Category: Category(42), Loc: base}},
	} {
		if _, err := NewDB(pois); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDBLookups(t *testing.T) {
	base := geo.LatLon{Lat: 34, Lon: -119}
	db, err := NewDB([]POI{
		{ID: 0, Category: Food, Loc: base},
		{ID: 1, Category: Shop, Loc: geo.Destination(base, 90, 300)},
		{ID: 2, Category: Arts, Loc: geo.Destination(base, 90, 5000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatalf("Len = %d", db.Len())
	}
	p, err := db.Get(1)
	if err != nil || p.Category != Shop {
		t.Fatalf("Get(1) = %+v, %v", p, err)
	}
	if _, err := db.Get(-1); err == nil {
		t.Error("Get(-1) succeeded")
	}
	if _, err := db.Get(3); err == nil {
		t.Error("Get(3) succeeded")
	}
	ids := db.Within(base, 400, nil)
	if len(ids) != 2 {
		t.Fatalf("Within(400m) = %v", ids)
	}
	near, dist, ok := db.Nearest(geo.Destination(base, 90, 280))
	if !ok || near.ID != 1 {
		t.Fatalf("Nearest = %+v (dist %.0f)", near, dist)
	}
}

func TestGenerateCity(t *testing.T) {
	cfg := DefaultCityConfig()
	cfg.POICount = 400
	db, err := GenerateCity(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 400 {
		t.Fatalf("Len = %d", db.Len())
	}
	// All POIs inside the city bounds (radius + cluster spread slack).
	seen := map[Category]int{}
	for _, p := range db.All() {
		d := geo.Distance(cfg.Center, p.Loc)
		if d > cfg.RadiusMeters+6*cfg.ClusterSigma {
			t.Fatalf("POI %d placed %.0f m out", p.ID, d)
		}
		seen[p.Category]++
		if p.Popularity <= 0 || p.Popularity > 1 {
			t.Fatalf("POI %d popularity %g", p.ID, p.Popularity)
		}
	}
	// Every category appears in a 400-venue city.
	for _, c := range Categories() {
		if seen[c] == 0 {
			t.Errorf("category %v absent", c)
		}
	}
	// Food should outnumber Arts by the configured mix.
	if seen[Food] <= seen[Arts] {
		t.Errorf("mix violated: food=%d arts=%d", seen[Food], seen[Arts])
	}
}

func TestGenerateCityDeterministic(t *testing.T) {
	cfg := DefaultCityConfig()
	cfg.POICount = 100
	a, err := GenerateCity(cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCity(cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		pa, _ := a.Get(i)
		pb, _ := b.Get(i)
		if pa != pb {
			t.Fatalf("POI %d differs across identical seeds", i)
		}
	}
}

func TestGenerateCityPopularityDowntownBias(t *testing.T) {
	cfg := DefaultCityConfig()
	cfg.POICount = 1000
	db, err := GenerateCity(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Mean distance-to-center of the top popularity decile must be well
	// below the overall mean (hot venues concentrate downtown).
	all := db.All()
	var top, rest []POI
	for _, p := range all {
		if p.Popularity > 1.0/100 { // top ~100 ranks of Zipf(1)
			top = append(top, p)
		} else {
			rest = append(rest, p)
		}
	}
	mean := func(ps []POI) float64 {
		var sum float64
		for _, p := range ps {
			sum += geo.Distance(cfg.Center, p.Loc)
		}
		return sum / float64(len(ps))
	}
	if len(top) == 0 || len(rest) == 0 {
		t.Fatal("popularity split degenerate")
	}
	if mt, mr := mean(top), mean(rest); mt >= mr*0.85 {
		t.Errorf("top venues not downtown-biased: top=%.0f m rest=%.0f m", mt, mr)
	}
}

func TestGenerateCityErrors(t *testing.T) {
	s := rng.New(1)
	bad := DefaultCityConfig()
	bad.POICount = 0
	if _, err := GenerateCity(bad, s); err == nil {
		t.Error("POICount=0 accepted")
	}
	bad = DefaultCityConfig()
	bad.ClusterCount = 0
	if _, err := GenerateCity(bad, s); err == nil {
		t.Error("ClusterCount=0 accepted")
	}
	bad = DefaultCityConfig()
	bad.RadiusMeters = 0
	if _, err := GenerateCity(bad, s); err == nil {
		t.Error("RadiusMeters=0 accepted")
	}
}

func TestZipfPopularityDistribution(t *testing.T) {
	cfg := DefaultCityConfig()
	cfg.POICount = 500
	db, err := GenerateCity(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one POI per rank: popularity values must all be distinct
	// 1/r^1 values.
	seen := map[float64]bool{}
	maxPop := 0.0
	for _, p := range db.All() {
		if seen[p.Popularity] {
			t.Fatalf("duplicate popularity %g", p.Popularity)
		}
		seen[p.Popularity] = true
		maxPop = math.Max(maxPop, p.Popularity)
	}
	if maxPop != 1 {
		t.Errorf("top popularity %g, want 1", maxPop)
	}
}
