package geosocial

// Service entry points: the facade wiring that turns the streaming
// validation engine into the long-running geoserve service. The
// internal/serve package owns spool watching, job scheduling, the LRU
// result cache and the HTTP API; validation itself is injected from
// here, so the service runs the exact engine geovalidate runs — which
// is what makes served partitions byte-identical to CLI output on the
// same dataset, for any worker count.

import (
	"fmt"
	"time"

	"geosocial/internal/serve"
)

// ServerOptions configures NewServer. The zero value serves the current
// directory as the spool with the paper's validation parameters.
type ServerOptions struct {
	// SpoolDir is the watched dataset directory; uploads land here too.
	// Empty selects "." (required by the underlying service, created if
	// missing).
	SpoolDir string
	// MaxJobs caps concurrent validations (<= 0 selects 2). Each job
	// additionally fans out per-user work onto Stream.Workers workers.
	MaxJobs int
	// CacheCapacity is the result-cache size in datasets (<= 0 selects
	// 64). Results are cached by dataset checksum; identical bytes are
	// never validated twice while cached.
	CacheCapacity int
	// PollInterval is the spool scan period (0 selects 2s, < 0 disables
	// the watcher; uploads still work).
	PollInterval time.Duration
	// Stream carries the validation parameters and worker count every
	// job runs with, exactly as ValidateFileOpts interprets them.
	Stream StreamOptions
	// Logf, when non-nil, receives one line per service lifecycle event.
	Logf func(format string, args ...any)
}

// NewServer constructs the validation service: a spool-watching,
// upload-accepting HTTP server (it implements http.Handler) that
// validates datasets through this package's streaming engine and caches
// results by dataset checksum. The caller binds it to a listener
// (cmd/geoserve does) and must Close it on shutdown; see docs/API.md
// for the endpoints.
func NewServer(opts ServerOptions) (*serve.Server, error) {
	if opts.SpoolDir == "" {
		opts.SpoolDir = "."
	}
	srv, err := serve.New(serve.Config{
		SpoolDir:      opts.SpoolDir,
		Workers:       opts.Stream.Workers,
		MaxJobs:       opts.MaxJobs,
		CacheCapacity: opts.CacheCapacity,
		PollInterval:  opts.PollInterval,
		Logf:          opts.Logf,
		Validate: func(path string, workers int) (*StreamResult, error) {
			o := opts.Stream
			o.Workers = workers
			return ValidateFileOpts(path, o)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}
	return srv, nil
}
