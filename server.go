package geosocial

// Service entry points: the facade wiring that turns the streaming
// validation engine into the long-running geoserve service. The
// internal/serve package owns spool watching, job scheduling, the LRU
// result cache and the HTTP API; validation itself is injected from
// here, so the service runs the exact engine geovalidate runs — which
// is what makes served partitions byte-identical to CLI output on the
// same dataset, for any worker count.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"geosocial/internal/core"
	"geosocial/internal/obs"
	"geosocial/internal/serve"
	"geosocial/internal/visits"
)

// ServerOptions configures NewServer. The zero value serves the current
// directory as the spool with the paper's validation parameters.
type ServerOptions struct {
	// SpoolDir is the watched dataset directory; uploads land here too.
	// Empty selects "." (required by the underlying service, created if
	// missing).
	SpoolDir string
	// MaxJobs caps concurrent validations (<= 0 selects 2). Each job
	// additionally fans out per-user work onto Stream.Workers workers.
	MaxJobs int
	// CacheCapacity is the result-cache size in datasets (<= 0 selects
	// 64). Results are cached by dataset checksum; identical bytes are
	// never validated twice while cached.
	CacheCapacity int
	// PollInterval is the spool scan period (0 selects 2s, < 0 disables
	// the watcher; uploads still work).
	PollInterval time.Duration
	// Stream carries the validation parameters and worker count every
	// job runs with, exactly as ValidateFileOpts interprets them. Its
	// OutcomeLog field is ignored (the service owns per-job log paths;
	// see Outcomes).
	Stream StreamOptions
	// Outcomes makes every validation also write a GSO1 outcome log
	// (content-addressed under "outcomes" in the spool) and enables the
	// /v1/datasets/{id}/outcomes and /analysis/{kind} endpoints, wired
	// to AnalyzeOutcomes with default options; analysis documents are
	// cached alongside validation results.
	Outcomes bool
	// NoDiskCache keeps the result cache memory-only. By default every
	// result (and analysis document) is persisted under "cache" in the
	// spool and reloaded lazily after a restart, so a restarted server
	// never revalidates bytes it has already seen. The persisted tiers
	// are namespaced by a fingerprint of the validation parameters, so
	// restarting with different parameters starts a fresh namespace
	// instead of serving results the old parameters computed.
	NoDiskCache bool
	// MaxDiskCache caps the persisted result/analysis entries in files
	// (oldest pruned first; pruned results revalidate from the spool).
	// <= 0 means unbounded.
	MaxDiskCache int
	// MaxOutcomeLogs caps retained outcome logs in files (oldest pruned
	// first; the outcomes/analysis endpoints answer 404 for a pruned
	// log). <= 0 means unbounded.
	MaxOutcomeLogs int
	// Checkpoints gives every shard-set validation a per-dataset
	// checkpoint directory under "checkpoints" in the spool (namespaced
	// by the parameter fingerprint, like the cache and outcome tiers).
	// A job interrupted by a crash or server restart then resumes from
	// its completed shards on retry instead of revalidating everything;
	// the checkpoints of a successfully completed job are removed. The
	// Stream.CheckpointDir field is ignored (the service owns per-job
	// checkpoint paths).
	Checkpoints bool
	// MaxCheckpointRuns caps retained checkpoint run directories
	// (oldest pruned first after a failed validation; pruning costs
	// only that run's partial progress). <= 0 means unbounded.
	MaxCheckpointRuns int
	// CheckpointStale overrides how old an orphaned checkpoint temp
	// file must be before a resuming run sweeps it (see
	// checkpoint.DefaultStaleAfter; <= 0 selects the default). It only
	// tunes crash-debris cleanup, so it is deliberately excluded from
	// the parameter fingerprint that namespaces the persisted tiers.
	CheckpointStale time.Duration
	// Logf, when non-nil, receives one line per service lifecycle event.
	Logf func(format string, args ...any)
	// Registry, when non-nil, receives every geoserve_* instrument and
	// backs the /metrics exposition (one Server per Registry). Nil makes
	// a private registry; /metrics works either way.
	Registry *obs.Registry
	// Stream.Spans, when set, is shared with the service layer: the
	// validation pipeline's stage spans and the service's own cache-tier
	// and append-apply spans land in one collector, exported on /metrics
	// as the geoserve_stage_*_total families.
}

// NewServer constructs the validation service: a spool-watching,
// upload-accepting HTTP server (it implements http.Handler) that
// validates datasets through this package's streaming engine and caches
// results by dataset checksum. The caller binds it to a listener
// (cmd/geoserve does) and must Close it on shutdown; see docs/API.md
// for the endpoints.
func NewServer(opts ServerOptions) (*serve.Server, error) {
	if opts.SpoolDir == "" {
		opts.SpoolDir = "."
	}
	cfg := serve.Config{
		SpoolDir:            opts.SpoolDir,
		Workers:             opts.Stream.Workers,
		MaxJobs:             opts.MaxJobs,
		CacheCapacity:       opts.CacheCapacity,
		NoDiskCache:         opts.NoDiskCache,
		ParamsTag:           validationFingerprint(opts.Stream),
		MaxDiskCacheEntries: opts.MaxDiskCache,
		RetainOutcomes:      opts.Outcomes,
		MaxOutcomeLogs:      opts.MaxOutcomeLogs,
		RetainCheckpoints:   opts.Checkpoints,
		MaxCheckpointRuns:   opts.MaxCheckpointRuns,
		PollInterval:        opts.PollInterval,
		Logf:                opts.Logf,
		Registry:            opts.Registry,
		Spans:               opts.Stream.Spans,
		Validate: func(path string, workers int, outcomeLog, checkpointDir string) (*StreamResult, error) {
			o := opts.Stream
			o.Workers = workers
			o.OutcomeLog = outcomeLog
			o.CheckpointDir = checkpointDir
			o.CheckpointStale = opts.CheckpointStale
			if o.Logf == nil {
				o.Logf = opts.Logf // surface checkpoint hits in the service log
			}
			return ValidateFileOpts(path, o)
		},
		Update: func(path string, prev *StreamResult, prevLog string, workers int, outcomeLog string) (*StreamResult, error) {
			o := opts.Stream
			o.Workers = workers
			o.OutcomeLog = outcomeLog
			if o.Logf == nil {
				o.Logf = opts.Logf
			}
			return UpdateValidation(path, prev, prevLog, o)
		},
	}
	if opts.Outcomes {
		cfg.AnalysisKinds = AnalysisKinds()
		// Analysis documents are encoded here, once, in the shared
		// presentation encoding — the cache stores and the endpoint
		// serves those bytes verbatim, so service output stays
		// byte-identical to geoanalyze -json on the same log.
		cfg.Analyze = func(logPath, kind string) ([]byte, error) {
			a, err := AnalyzeOutcomes(logPath, kind)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := core.WriteIndentedJSON(&buf, a); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}
	return srv, nil
}

// validationFingerprint names the persisted-tier namespace for a
// validation configuration: a short hash of the resolved matching and
// visit-detection parameters. Dataset bytes alone do not determine a
// result — the parameters do too — so a server restarted with
// different parameters must not reuse results persisted under the old
// ones. Zero options resolve to the paper defaults before hashing, so
// "defaults by omission" and "defaults spelled out" share a namespace.
// Workers are excluded: results are identical for any worker count.
func validationFingerprint(o StreamOptions) string {
	params := o.Params
	if params == (core.Params{}) {
		params = core.DefaultParams()
	}
	vcfg := o.VisitConfig
	if vcfg == (visits.Config{}) {
		vcfg = visits.DefaultConfig()
	}
	h := sha256.Sum256([]byte(fmt.Sprintf("gso-params|%+v|%+v", params, vcfg)))
	return hex.EncodeToString(h[:6])
}
