package geosocial

// Log-backed analysis entry points: the §5–§7 analyses (feature
// correlations, extraneous-checkin detectors, filtering trade-off,
// Levy mobility fits) over a GSO1 outcome log written by validation
// (StreamOptions.OutcomeLog / geovalidate -outcomes), instead of
// in-memory []core.UserOutcome. Every analysis streams the log one
// record at a time; what it retains depends on the math — a few
// numbers per user for summary, correlations and the trade-off, and
// the full compact sample for the detector (feature vectors) and the
// Levy fits (flights), which grows with the dataset but is orders of
// magnitude below the traces the in-memory path would hold. Results
// are exactly equal to the in-memory path over the same users: the
// log stores exact float bits in canonical user order, and both paths
// share one accumulator implementation per analysis.

import (
	"fmt"
	"math"
	"strings"
	"time"

	"geosocial/internal/classify"
	"geosocial/internal/detect"
	"geosocial/internal/eval"
	"geosocial/internal/levy"
	"geosocial/internal/outcome"
)

// Analysis kinds accepted by AnalyzeOutcomes (and served by geoserve's
// /v1/datasets/{id}/analysis/{kind} endpoint).
const (
	AnalysisSummary      = "summary"      // partition, taxonomy, truth score
	AnalysisCorrelations = "correlations" // Table 2 feature correlations
	AnalysisDetector     = "detector"     // §7 learned + §5.3 burst detectors
	AnalysisLevy         = "levy"         // §6.1 Levy-walk model fits
	AnalysisTradeoff     = "tradeoff"     // §5.3 user-filtering trade-off
)

// AnalysisKinds returns the supported analysis kinds in presentation
// order.
func AnalysisKinds() []string {
	return []string{AnalysisSummary, AnalysisCorrelations, AnalysisDetector, AnalysisLevy, AnalysisTradeoff}
}

// AnalyzeOptions tunes AnalyzeOutcomesOpts. The zero value selects the
// defaults used throughout the repository.
type AnalyzeOptions struct {
	// Folds is the detector cross-validation fold count (default 5).
	Folds int
	// Threshold is the detector decision threshold. Non-positive values
	// (including the zero value) select the default 0.5 — callers that
	// mean "flag everything" should pass a small positive epsilon
	// (scores are strictly inside (0, 1)).
	Threshold float64
	// BurstGap is the burstiness detector's gap threshold (default 2m).
	BurstGap time.Duration
	// TradeoffTargets are the extraneous-removal fractions reported as
	// headline trade-off points (default 0.5, 0.8, 0.95).
	TradeoffTargets []float64
	// CurvePoints caps the trade-off curve samples included in the
	// report (default 200; the underlying curve has one point per user).
	CurvePoints int
}

func (o AnalyzeOptions) withDefaults() AnalyzeOptions {
	if o.Folds <= 0 {
		o.Folds = 5
	}
	if o.Threshold <= 0 {
		o.Threshold = 0.5
	}
	if o.BurstGap <= 0 {
		o.BurstGap = 2 * time.Minute
	}
	if len(o.TradeoffTargets) == 0 {
		o.TradeoffTargets = []float64{0.5, 0.8, 0.95}
	}
	if o.CurvePoints <= 0 {
		o.CurvePoints = 200
	}
	return o
}

// OutcomeSummary is the dataset-level aggregate reassembled from a log.
type OutcomeSummary = outcome.Summary

// OutcomeAnalysis is one analysis over an outcome log — the JSON
// document cmd/geoanalyze -json emits and geoserve's analysis endpoint
// serves. Exactly one of the kind-specific fields is populated.
type OutcomeAnalysis struct {
	// Kind is the analysis that ran.
	Kind string `json:"kind"`
	// Dataset is the dataset name from the log header.
	Dataset string `json:"dataset"`
	// Users and Checkins count the log's records and checkins.
	Users    int `json:"users"`
	Checkins int `json:"checkins"`

	Summary      *OutcomeSummary     `json:"summary,omitempty"`
	Correlations *CorrelationsReport `json:"correlations,omitempty"`
	Detector     *DetectorReport     `json:"detector,omitempty"`
	Levy         *LevyReport         `json:"levy,omitempty"`
	Tradeoff     *TradeoffReport     `json:"tradeoff,omitempty"`
}

// CorrelationsReport is the Table 2 matrix keyed by kind name.
type CorrelationsReport struct {
	// Users is the number of users contributing (those with checkins).
	Users int `json:"users"`
	// Features are the column headers, index-aligned with each row.
	Features []string `json:"features"`
	// Rows maps a checkin kind to its four Pearson correlations.
	Rows map[string][4]float64 `json:"rows"`
}

// DetectorReport evaluates the §7 learned detector (user-grouped
// cross-validation) and the §5.3 burstiness baseline.
type DetectorReport struct {
	Examples  int     `json:"examples"`
	Folds     int     `json:"folds"`
	Threshold float64 `json:"threshold"`
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	TN        int     `json:"tn"`
	FN        int     `json:"fn"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	Accuracy  float64 `json:"accuracy"`
	// Burst is the no-training burstiness baseline at BurstGap.
	Burst BurstReport `json:"burst"`
}

// BurstReport scores the burstiness detector at one gap threshold.
type BurstReport struct {
	GapSeconds float64 `json:"gap_seconds"`
	Precision  float64 `json:"precision"`
	Recall     float64 `json:"recall"`
	F1         float64 `json:"f1"`
}

// LevyModelReport is one fitted §6.1 model's parameters.
type LevyModelReport struct {
	// Flights is the sample size the flight fit used.
	Flights     int     `json:"flights"`
	FlightXmKm  float64 `json:"flight_xm_km"`
	FlightAlpha float64 `json:"flight_alpha"`
	FlightMaxKm float64 `json:"flight_max_km"`
	MoveTimeK   float64 `json:"move_time_k"`
	MoveTimeExp float64 `json:"move_time_exp"`
	MoveTimeR2  float64 `json:"move_time_r2"`
	PauseXmMin  float64 `json:"pause_xm_min,omitempty"`
	PauseAlpha  float64 `json:"pause_alpha,omitempty"`
}

// LevyReport bundles the three fitted mobility models.
type LevyReport struct {
	GPS    LevyModelReport `json:"gps"`
	Honest LevyModelReport `json:"honest_checkin"`
	All    LevyModelReport `json:"all_checkin"`
}

// TradeoffPoint is one sample of the §5.3 filtering curve.
type TradeoffPoint struct {
	UsersDropped      int     `json:"users_dropped"`
	ExtraneousRemoved float64 `json:"extraneous_removed"`
	HonestLost        float64 `json:"honest_lost"`
}

// TradeoffTarget is the cost of reaching one extraneous-removal target.
type TradeoffTarget struct {
	TargetExtraneous float64 `json:"target_extraneous"`
	UsersDropped     int     `json:"users_dropped"`
	HonestLost       float64 `json:"honest_lost"`
}

// TradeoffReport is the §5.3 user-filtering trade-off.
type TradeoffReport struct {
	// CurveUsers is the underlying curve length (users with checkins).
	CurveUsers int `json:"curve_users"`
	// Curve is the trade-off curve, decimated to at most CurvePoints
	// samples (the last point is always included).
	Curve []TradeoffPoint `json:"curve"`
	// Targets are the headline points the paper quotes.
	Targets []TradeoffTarget `json:"targets"`
}

// AnalyzeOutcomes runs one analysis kind over an outcome log with the
// default options; see AnalysisKinds for the kinds.
func AnalyzeOutcomes(path, kind string) (*OutcomeAnalysis, error) {
	return AnalyzeOutcomesOpts(path, kind, AnalyzeOptions{})
}

// AnalyzeOutcomesOpts is AnalyzeOutcomes with explicit options. The log
// is streamed in a single pass per call; the per-user outcomes behind
// it are never rebuilt.
func AnalyzeOutcomesOpts(path, kind string, opts AnalyzeOptions) (*OutcomeAnalysis, error) {
	opts = opts.withDefaults()
	a := &OutcomeAnalysis{Kind: kind}
	var err error
	switch kind {
	case AnalysisSummary:
		err = a.runSummary(path)
	case AnalysisCorrelations:
		err = a.runCorrelations(path)
	case AnalysisDetector:
		err = a.runDetector(path, opts)
	case AnalysisLevy:
		err = a.runLevy(path)
	case AnalysisTradeoff:
		err = a.runTradeoff(path, opts)
	default:
		return nil, fmt.Errorf("geosocial: unknown analysis kind %q (have %s)",
			kind, strings.Join(AnalysisKinds(), ", "))
	}
	if err != nil {
		return nil, err
	}
	return a, nil
}

// setStats fills the analysis's shared header fields from one scan.
func (a *OutcomeAnalysis) setStats(st outcome.ScanStats) {
	a.Dataset, a.Users, a.Checkins = st.Name, st.Users, st.Checkins
}

func (a *OutcomeAnalysis) runSummary(path string) error {
	sm, err := outcome.Summarize(path)
	if err != nil {
		return fmt.Errorf("geosocial: %w", err)
	}
	a.Dataset, a.Users, a.Checkins = sm.Name, sm.Users, sm.Checkins
	a.Summary = sm
	return nil
}

func (a *OutcomeAnalysis) runCorrelations(path string) error {
	fc, st, err := outcome.Correlations(path)
	if err != nil {
		return fmt.Errorf("geosocial: %w", err)
	}
	a.setStats(st)
	rep := &CorrelationsReport{
		Users:    fc.Users,
		Features: classify.FeatureNames(),
		Rows:     make(map[string][4]float64, len(fc.Rows)),
	}
	for k, row := range fc.Rows {
		rep.Rows[k.String()] = row
	}
	a.Correlations = rep
	return nil
}

func (a *OutcomeAnalysis) runDetector(path string, opts AnalyzeOptions) error {
	examples, burst, st, err := outcome.Detector(path, classify.BurstDetector{MaxGap: opts.BurstGap})
	if err != nil {
		return fmt.Errorf("geosocial: %w", err)
	}
	a.setStats(st)
	score, err := detect.CrossValidate(examples, opts.Folds, detect.DefaultTrainConfig(), opts.Threshold)
	if err != nil {
		return fmt.Errorf("geosocial: %w", err)
	}
	a.Detector = &DetectorReport{
		Examples:  len(examples),
		Folds:     opts.Folds,
		Threshold: opts.Threshold,
		TP:        score.TP, FP: score.FP, TN: score.TN, FN: score.FN,
		Precision: score.Precision(),
		Recall:    score.Recall(),
		F1:        score.F1(),
		Accuracy:  score.Accuracy(),
		Burst: BurstReport{
			GapSeconds: opts.BurstGap.Seconds(),
			Precision:  burst.Precision(),
			Recall:     burst.Recall(),
			F1:         burst.F1(),
		},
	}
	return nil
}

func (a *OutcomeAnalysis) runLevy(path string) error {
	gpsSm, honestSm, allSm, st, err := outcome.Samples(path)
	if err != nil {
		return fmt.Errorf("geosocial: %w", err)
	}
	a.setStats(st)
	models, err := eval.FitModelsFromSamples(gpsSm, honestSm, allSm)
	if err != nil {
		return fmt.Errorf("geosocial: %w", err)
	}
	a.Levy = &LevyReport{
		GPS:    levyModelReport(models.GPS),
		Honest: levyModelReport(models.Honest),
		All:    levyModelReport(models.All),
	}
	return nil
}

func levyModelReport(m *levy.Model) LevyModelReport {
	return LevyModelReport{
		Flights:     m.FlightDist.N,
		FlightXmKm:  m.FlightDist.Xm,
		FlightAlpha: m.FlightDist.Alpha,
		FlightMaxKm: m.FlightMax,
		MoveTimeK:   m.MoveTime.K,
		MoveTimeExp: m.MoveTime.Exp,
		MoveTimeR2:  m.MoveTime.R2,
		PauseXmMin:  m.Pause.Xm,
		PauseAlpha:  m.Pause.Alpha,
	}
}

func (a *OutcomeAnalysis) runTradeoff(path string, opts AnalyzeOptions) error {
	ft, st, err := outcome.FilterTradeoff(path)
	if err != nil {
		return fmt.Errorf("geosocial: %w", err)
	}
	a.setStats(st)
	n := len(ft.UsersDropped)
	rep := &TradeoffReport{CurveUsers: n}
	step := 1
	if n > opts.CurvePoints {
		step = int(math.Ceil(float64(n) / float64(opts.CurvePoints)))
	}
	for i := 0; i < n; i += step {
		rep.Curve = append(rep.Curve, TradeoffPoint{
			UsersDropped:      ft.UsersDropped[i],
			ExtraneousRemoved: ft.ExtraneousRemoved[i],
			HonestLost:        ft.HonestLost[i],
		})
	}
	if n > 0 && (n-1)%step != 0 {
		rep.Curve = append(rep.Curve, TradeoffPoint{
			UsersDropped:      ft.UsersDropped[n-1],
			ExtraneousRemoved: ft.ExtraneousRemoved[n-1],
			HonestLost:        ft.HonestLost[n-1],
		})
	}
	for _, target := range opts.TradeoffTargets {
		dropped, lost := ft.HonestLossAt(target)
		rep.Targets = append(rep.Targets, TradeoffTarget{
			TargetExtraneous: target,
			UsersDropped:     dropped,
			HonestLost:       lost,
		})
	}
	a.Tradeoff = rep
	return nil
}
