package geosocial_test

// Ingest-scaling benchmarks: the same corpus validated as one binary
// file and as 4- and 8-shard sets. With all cores available
// (workers=0), shard count is the I/O fan-out axis — each shard gets
// its own frame-fetch goroutine while decode+validate share one worker
// pool — so on multi-core hardware throughput should scale with shard
// count until the pool saturates. Run with
//
//	go test -run '^$' -bench ValidateShards -benchtime 3x .
//
// and compare users/s across the sub-benchmarks; CI archives the
// results as a BENCH_*.json artifact via cmd/benchjson.

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"geosocial"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

var (
	shardBenchOnce sync.Once
	shardBenchDS   *trace.Dataset
	shardBenchErr  error
)

// shardBenchDataset generates the shared corpus once per process.
func shardBenchDataset(b *testing.B) *trace.Dataset {
	b.Helper()
	shardBenchOnce.Do(func() {
		shardBenchDS, shardBenchErr = synth.Generate(synth.PrimaryConfig().Scale(0.15), rng.New(42))
	})
	if shardBenchErr != nil {
		b.Fatal(shardBenchErr)
	}
	return shardBenchDS
}

// BenchmarkValidateShards measures end-to-end streaming validation
// (decode + visit detection + matching + classification) of the same
// corpus stored as a single file and as sharded sets.
func BenchmarkValidateShards(b *testing.B) {
	ds := shardBenchDataset(b)
	bench := func(b *testing.B, input string, users int) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := geosocial.ValidateFileWorkers(input, 0)
			if err != nil {
				b.Fatal(err)
			}
			if res.Users != users {
				b.Fatalf("validated %d users, want %d", res.Users, users)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(users)*float64(b.N)/b.Elapsed().Seconds(), "users/s")
	}

	b.Run("file", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "primary.bin")
		if err := ds.SaveFile(path); err != nil {
			b.Fatal(err)
		}
		bench(b, path, len(ds.Users))
	})
	for _, shards := range []int{4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			manifest, err := ds.SaveShards(b.TempDir(), trace.ShardOptions{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			bench(b, manifest, len(ds.Users))
		})
	}
}
