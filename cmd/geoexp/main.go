// Command geoexp regenerates the paper's tables and figures: it builds a
// synthetic study at the requested scale, runs the selected experiments
// and prints each report (measured rows/series plus the paper's published
// values for comparison).
//
// Usage:
//
//	geoexp -scale 0.25 -exp fig1
//	geoexp -scale 1.0 -exp all        # the full paper, full population
//	geoexp -scale 1.0 -workers 8      # build the study on 8 workers
//	geoexp -list
//
// The -workers flag controls per-user pipeline parallelism while the
// study context is built (0 = all cores); reports are identical for any
// worker count.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"geosocial/internal/eval"
	"geosocial/internal/obs"
)

// errUsage signals a flag-parse failure the flag package has already
// reported to stderr; main exits 2 without printing it again.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("geoexp: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run executes the tool against args, writing reports to stdout. It is
// the whole tool minus process concerns, so tests can drive it directly.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("geoexp", flag.ContinueOnError)
	ver := obs.RegisterVersionFlag(fs)
	var (
		scale   = fs.Float64("scale", 0.25, "population scale relative to the paper's study")
		seed    = fs.Uint64("seed", 42, "root RNG seed")
		exp     = fs.String("exp", "all", "experiment ID or comma list (see -list)")
		list    = fs.Bool("list", false, "list experiment IDs and exit")
		workers = fs.Int("workers", 0, "per-user pipeline workers (0 = all cores, 1 = serial; reports are identical)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if obs.PrintVersionIf(*ver, stdout, "geoexp") {
		return nil
	}

	if *list {
		for _, id := range eval.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return nil
	}

	start := time.Now()
	ctx, err := eval.NewContextWorkers(*scale, *seed, *workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "study generated and validated at scale %.2f (seed %d) in %v\n\n",
		*scale, *seed, time.Since(start).Round(time.Millisecond))

	ids := eval.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		rep, err := eval.Run(ctx, id)
		if err != nil {
			return err
		}
		if err := rep.Render(stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	return nil
}
