// Command geoexp regenerates the paper's tables and figures: it builds a
// synthetic study at the requested scale, runs the selected experiments
// and prints each report (measured rows/series plus the paper's published
// values for comparison).
//
// Usage:
//
//	geoexp -scale 0.25 -exp fig1
//	geoexp -scale 1.0 -exp all        # the full paper, full population
//	geoexp -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"geosocial/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("geoexp: ")
	var (
		scale = flag.Float64("scale", 0.25, "population scale relative to the paper's study")
		seed  = flag.Uint64("seed", 42, "root RNG seed")
		exp   = flag.String("exp", "all", "experiment ID or comma list (see -list)")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range eval.IDs() {
			fmt.Println(id)
		}
		return
	}

	start := time.Now()
	ctx, err := eval.NewContext(*scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("study generated and validated at scale %.2f (seed %d) in %v\n\n",
		*scale, *seed, time.Since(start).Round(time.Millisecond))

	ids := eval.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		rep, err := eval.Run(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
