package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "fig1") || !strings.Contains(got, "table1") {
		t.Errorf("experiment list missing expected IDs:\n%s", got)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scale", "0.03", "-seed", "7", "-exp", "fig1", "-workers", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "study generated and validated") {
		t.Errorf("missing study banner:\n%s", got)
	}
	if !strings.Contains(strings.ToLower(got), "honest") {
		t.Errorf("fig1 report missing partition content:\n%s", got)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	err := run([]string{"-scale", "0.03", "-exp", "nonsense"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("expected error for unknown experiment ID")
	}
}
