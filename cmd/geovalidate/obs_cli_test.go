package main

// Tests for the observability command-line surface: -version, -report,
// -log-level / -quiet, and the stdout/stderr separation contract —
// stdout carries only the report or the -json document, stderr carries
// every log line and the span breakdown.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"geosocial/internal/obs"
)

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-version"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	want := obs.VersionString("geovalidate") + "\n"
	if out.String() != want {
		t.Fatalf("stdout = %q, want %q", out.String(), want)
	}
	if errb.Len() != 0 {
		t.Fatalf("-version wrote to stderr: %q", errb.String())
	}
}

// TestReportKeepsStdoutIdentical pins the byte-identity contract: the
// -report span breakdown lands on stderr, so stdout is the same bytes
// with and without it, in both text and -json output modes.
func TestReportKeepsStdoutIdentical(t *testing.T) {
	path := genDataset(t)
	for _, jsonOut := range []bool{false, true} {
		base := []string{"-in", path, "-workers", "4"}
		if jsonOut {
			base = append(base, "-json")
		}
		var plain bytes.Buffer
		if err := run(base, &plain, &bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
		var reported, errb bytes.Buffer
		if err := run(append(base, "-report", "text"), &reported, &errb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(plain.Bytes(), reported.Bytes()) {
			t.Fatalf("json=%v: stdout differs with -report text", jsonOut)
		}
		if !strings.Contains(errb.String(), "slowest stage:") {
			t.Fatalf("json=%v: span report missing from stderr: %q", jsonOut, errb.String())
		}
	}
}

func TestReportJSONDecodes(t *testing.T) {
	path := genDataset(t)
	var out, errb bytes.Buffer
	if err := run([]string{"-in", path, "-report", "json"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(errb.Bytes(), &rep); err != nil {
		t.Fatalf("decode -report json from stderr: %v\n%s", err, errb.String())
	}
	if len(rep.Stages) == 0 || rep.SlowestStage == "" {
		t.Fatalf("span report has no stages: %+v", rep)
	}
	if strings.Contains(out.String(), "slowest") {
		t.Fatalf("span report leaked onto stdout: %q", out.String())
	}
}

func TestReportRejectsUnknownFormat(t *testing.T) {
	err := run([]string{"-in", "x", "-report", "csv"}, &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-report") {
		t.Fatalf("err = %v, want -report validation error", err)
	}
}

// TestLogsGoToStderrOnly drives a checkpointed shard-set run — the
// chattiest path — and checks that every log line lands on stderr,
// stdout is byte-identical to a -quiet run, and -quiet silences stderr.
func TestLogsGoToStderrOnly(t *testing.T) {
	_, manifest := genShardSet(t)
	ckptDir := t.TempDir()
	base := []string{"-in", manifest, "-checkpoint", ckptDir}

	var loudOut, loudErr bytes.Buffer
	if err := run(base, &loudOut, &loudErr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(loudErr.String(), "checkpoint written") {
		t.Fatalf("checkpoint log lines missing from stderr: %q", loudErr.String())
	}
	if strings.Contains(loudOut.String(), "checkpoint written") {
		t.Fatalf("log lines leaked onto stdout: %q", loudOut.String())
	}

	// The rerun hits the checkpoints; -quiet must silence those lines
	// without changing the report.
	var quietOut, quietErr bytes.Buffer
	if err := run(append(base, "-quiet"), &quietOut, &quietErr); err != nil {
		t.Fatal(err)
	}
	if quietErr.Len() != 0 {
		t.Fatalf("-quiet still wrote to stderr: %q", quietErr.String())
	}
	if !bytes.Equal(loudOut.Bytes(), quietOut.Bytes()) {
		t.Fatalf("stdout differs between logged and -quiet runs:\n%q\n%q", loudOut.String(), quietOut.String())
	}
}

func TestLogFormatJSON(t *testing.T) {
	_, manifest := genShardSet(t)
	var out, errb bytes.Buffer
	if err := run([]string{"-in", manifest, "-checkpoint", t.TempDir(), "-log-format", "json"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(errb.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no log lines on stderr")
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		for _, k := range []string{"ts", "level", "msg", "component"} {
			if _, ok := rec[k]; !ok {
				t.Fatalf("log record missing %q: %q", k, line)
			}
		}
	}
}

func TestBadLogFlagsRejected(t *testing.T) {
	for _, tc := range []struct{ args, wantIn string }{
		{"-log-level;loud", "-log-level"},
		{"-log-format;xml", "-log-format"},
	} {
		args := strings.Split(tc.args, ";")
		err := run(append(args, "-in", "x"), &bytes.Buffer{}, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), tc.wantIn) {
			t.Fatalf("%v: err = %v, want mention of %s", args, err, tc.wantIn)
		}
	}
}
