package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"geosocial"
	"geosocial/internal/core"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

// genDataset writes a tiny primary dataset to a temp file and returns the
// path.
func genDataset(t *testing.T) string {
	t.Helper()
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "primary.json.gz")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// genBothFormats writes the same dataset (on the binary codec's E7
// coordinate grid) as a JSON file and a binary file.
func genBothFormats(t *testing.T) (jsonPath, binPath string) {
	t.Helper()
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	binPath = filepath.Join(dir, "primary.bin.gz")
	if err := ds.SaveFile(binPath); err != nil {
		t.Fatal(err)
	}
	onGrid, err := trace.LoadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	jsonPath = filepath.Join(dir, "primary.json.gz")
	if err := onGrid.SaveFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	return jsonPath, binPath
}

func TestRunReportsPartitionAndTaxonomy(t *testing.T) {
	path := genDataset(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-workers", "4"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"matching (alpha=500m", "checkin taxonomy:", "honest", "extraneous", "matcher vs ground truth"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

func TestRunSerialAndParallelReportsIdentical(t *testing.T) {
	path := genDataset(t)
	var serial, parallel bytes.Buffer
	if err := run([]string{"-in", path, "-workers", "1"}, &serial, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-workers", "8"}, &parallel, io.Discard); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("reports differ between -workers 1 and 8:\n--- serial\n%s--- parallel\n%s",
			serial.String(), parallel.String())
	}
}

func TestRunRequiresInput(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}, io.Discard); err == nil {
		t.Fatal("expected error when -in is missing")
	}
}

func TestRunWritesProfiles(t *testing.T) {
	path := genDataset(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-cpuprofile", cpu, "-memprofile", mem}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// genShardSet writes the same dataset as a single binary file and as a
// 3-shard corpus, returning both paths.
func genShardSet(t *testing.T) (binPath, manifestPath string) {
	t.Helper()
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	binPath = filepath.Join(dir, "primary.bin.gz")
	if err := ds.SaveFile(binPath); err != nil {
		t.Fatal(err)
	}
	shardDir := t.TempDir()
	manifestPath, err = ds.SaveShards(shardDir, trace.ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	return binPath, manifestPath
}

// TestRunShardSetMatchesSingleFile validates the same corpus through a
// single file, a manifest, and the manifest's directory: everything but
// the per-shard trailer lines must be identical.
func TestRunShardSetMatchesSingleFile(t *testing.T) {
	binPath, manifestPath := genShardSet(t)
	report := func(path string) string {
		t.Helper()
		var out bytes.Buffer
		if err := run([]string{"-in", path, "-workers", "4"}, &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	stripShards := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "shard ") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	single := report(binPath)
	fromManifest := report(manifestPath)
	fromDir := report(filepath.Dir(manifestPath))
	if !strings.Contains(fromManifest, "shard primary-0000.bin") {
		t.Errorf("sharded report missing per-shard lines:\n%s", fromManifest)
	}
	if got := stripShards(fromManifest); got != single {
		t.Errorf("sharded report differs from single file:\n--- single\n%s--- sharded\n%s", single, got)
	}
	if fromDir != fromManifest {
		t.Errorf("directory input differs from manifest input:\n--- dir\n%s--- manifest\n%s", fromDir, fromManifest)
	}
}

// TestRunJSONOutput checks the -json report is valid JSON carrying the
// same aggregates as the text report, including per-shard stats for a
// sharded input.
func TestRunJSONOutput(t *testing.T) {
	binPath, manifestPath := genShardSet(t)
	decode := func(path string) map[string]any {
		t.Helper()
		var out bytes.Buffer
		if err := run([]string{"-in", path, "-json"}, &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
			t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
		}
		return doc
	}
	single := decode(binPath)
	sharded := decode(manifestPath)
	if single["name"] != "primary" || single["format"] != "binary" {
		t.Errorf("single-file JSON header fields: %v %v", single["name"], single["format"])
	}
	if _, ok := single["shards"]; ok {
		t.Error("single-file JSON carries per-shard stats")
	}
	shards, ok := sharded["shards"].([]any)
	if !ok || len(shards) != 3 {
		t.Fatalf("sharded JSON shards = %v, want 3 entries", sharded["shards"])
	}
	for _, key := range []string{"users", "partition", "taxonomy", "truth"} {
		if !reflect.DeepEqual(single[key], sharded[key]) {
			t.Errorf("JSON %q differs between single and sharded input:\n%v\n%v", key, single[key], sharded[key])
		}
	}
}

// TestRunBinaryStreamingMatchesJSON runs the tool over the JSON and
// binary encodings of the same dataset: beyond the header line naming the
// detected format, the reports must be identical — the streamed binary
// path computes exactly what the in-memory JSON path does.
func TestRunBinaryStreamingMatchesJSON(t *testing.T) {
	jsonPath, binPath := genBothFormats(t)
	report := func(path string, workers string) (header, body string) {
		t.Helper()
		var out bytes.Buffer
		if err := run([]string{"-in", path, "-workers", workers}, &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		s := out.String()
		i := strings.IndexByte(s, '\n')
		return s[:i], s[i+1:]
	}
	jsonHdr, jsonBody := report(jsonPath, "1")
	binHdr, binBody := report(binPath, "1")
	if !strings.Contains(jsonHdr, "(json)") || !strings.Contains(binHdr, "(binary)") {
		t.Errorf("format not reported: %q / %q", jsonHdr, binHdr)
	}
	if jsonBody != binBody {
		t.Errorf("reports differ between JSON and binary:\n--- json\n%s--- binary\n%s", jsonBody, binBody)
	}
	// And the streamed binary path is worker-count invariant too.
	_, bin8 := report(binPath, "8")
	if bin8 != binBody {
		t.Errorf("binary reports differ between -workers 1 and 8:\n--- 1\n%s--- 8\n%s", binBody, bin8)
	}
}

// TestJSONRoundTripsThroughServiceDecoder pins the field-name contract
// between geovalidate -json and the geoserve service: the CLI's output
// decodes through the service's cache decoder (core.DecodeStreamResult)
// and back without losing anything, and the partition the service
// serves over HTTP is byte-identical to the partition field of this
// tool's -json output, at workers 1 and 8.
func TestJSONRoundTripsThroughServiceDecoder(t *testing.T) {
	_, binPath := genBothFormats(t)
	for _, workers := range []string{"1", "8"} {
		var out bytes.Buffer
		if err := run([]string{"-in", binPath, "-json", "-workers", workers}, &out, io.Discard); err != nil {
			t.Fatal(err)
		}

		// geovalidate -json → service decoder → service encoder → decoder:
		// nothing may be lost or renamed along the way.
		res, err := core.DecodeStreamResult(out.Bytes())
		if err != nil {
			t.Fatalf("service decoder rejects geovalidate -json output: %v", err)
		}
		encoded, err := res.Encode()
		if err != nil {
			t.Fatal(err)
		}
		res2, err := core.DecodeStreamResult(encoded)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, res2) {
			t.Fatalf("round trip through the cache encoding lost data:\n%+v\nvs\n%+v", res, res2)
		}

		// Serve the same file and compare the partition documents byte
		// for byte.
		srv, err := geosocial.NewServer(geosocial.ServerOptions{
			SpoolDir:     t.TempDir(),
			PollInterval: -1,
			Stream:       geosocial.StreamOptions{Workers: mustAtoi(t, workers)},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		f, err := os.Open(binPath)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/datasets?wait=1", "application/octet-stream", f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		var info struct {
			ID     string `json:"id"`
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if info.Status != "done" {
			t.Fatalf("service job not done: %+v", info)
		}
		resp, err = http.Get(ts.URL + "/v1/datasets/" + info.ID + "/partition")
		if err != nil {
			t.Fatal(err)
		}
		served, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var wantBuf bytes.Buffer
		enc := json.NewEncoder(&wantBuf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Partition); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(served, wantBuf.Bytes()) {
			t.Fatalf("workers=%s: served partition is not byte-identical to geovalidate -json partition:\n%s\nvs\n%s",
				workers, served, wantBuf.Bytes())
		}
	}
}

func mustAtoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestRunUpdateFrom drives the incremental CLI loop: validate a shard
// set, append a generation, and revalidate with -update-from — the
// -json document and the outcome log must be byte-identical to a cold
// full run on the grown manifest.
func TestRunUpdateFrom(t *testing.T) {
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	manifest, err := ds.SaveShards(dir, trace.ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	work := t.TempDir()
	validate := func(args ...string) []byte {
		t.Helper()
		var out bytes.Buffer
		if err := run(append([]string{"-in", manifest, "-json"}, args...), &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	gen0JSON := filepath.Join(work, "gen0.json")
	gen0Log := filepath.Join(work, "gen0.gso")
	if err := os.WriteFile(gen0JSON, validate("-outcomes", gen0Log), 0o666); err != nil {
		t.Fatal(err)
	}

	// Grow the set by one brand-new user (the engine-level equivalence
	// across richer deltas is pinned in the root package's tests).
	maxID := 0
	for _, u := range ds.Users {
		if u.ID > maxID {
			maxID = u.ID
		}
	}
	aw, err := trace.OpenAppend(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.WriteUser(&trace.User{ID: maxID + 1, Days: 7}); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}

	coldLog := filepath.Join(work, "cold.gso")
	cold := validate("-outcomes", coldLog, "-workers", "1")
	updLog := filepath.Join(work, "upd.gso")
	upd := validate("-outcomes", updLog, "-workers", "4",
		"-update-from", gen0JSON, "-prev-outcomes", gen0Log)
	if !bytes.Equal(upd, cold) {
		t.Errorf("-update-from JSON differs from cold run:\n%s\nvs\n%s", upd, cold)
	}
	readBack := func(path string) []byte {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if !bytes.Equal(readBack(updLog), readBack(coldLog)) {
		t.Error("-update-from outcome log differs from cold run's log")
	}

	// Flag pairing: each half of the update pair alone is an error.
	if err := run([]string{"-in", manifest, "-update-from", gen0JSON}, io.Discard, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-prev-outcomes") {
		t.Errorf("-update-from alone: %v", err)
	}
	if err := run([]string{"-in", manifest, "-prev-outcomes", gen0Log}, io.Discard, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-update-from") {
		t.Errorf("-prev-outcomes alone: %v", err)
	}
}
