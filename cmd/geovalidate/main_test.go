package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"geosocial/internal/rng"
	"geosocial/internal/synth"
)

// genDataset writes a tiny primary dataset to a temp file and returns the
// path.
func genDataset(t *testing.T) string {
	t.Helper()
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "primary.json.gz")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReportsPartitionAndTaxonomy(t *testing.T) {
	path := genDataset(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-workers", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"matching (alpha=500m", "checkin taxonomy:", "honest", "extraneous", "matcher vs ground truth"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

func TestRunSerialAndParallelReportsIdentical(t *testing.T) {
	path := genDataset(t)
	var serial, parallel bytes.Buffer
	if err := run([]string{"-in", path, "-workers", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-workers", "8"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("reports differ between -workers 1 and 8:\n--- serial\n%s--- parallel\n%s",
			serial.String(), parallel.String())
	}
}

func TestRunRequiresInput(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error when -in is missing")
	}
}
