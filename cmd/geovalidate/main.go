// Command geovalidate runs the §4–§5 validation pipeline on a saved
// dataset: visit detection, checkin-to-visit matching (α = 500 m,
// β = 30 min), the Figure 1 partition, and the extraneous-checkin
// taxonomy.
//
// Usage:
//
//	geovalidate -in primary.json.gz
//	geovalidate -in primary.json.gz -alpha 250 -beta 15m
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"geosocial"
	"geosocial/internal/classify"
	"geosocial/internal/core"
	"geosocial/internal/visits"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("geovalidate: ")
	var (
		in    = flag.String("in", "", "dataset file (JSON, .gz supported)")
		alpha = flag.Float64("alpha", 500, "spatial matching threshold in meters")
		beta  = flag.Duration("beta", 30*time.Minute, "temporal matching threshold")
		truth = flag.Bool("truth", true, "score the matcher against ground-truth labels when present")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("missing -in dataset file (generate one with geogen)")
	}
	ds, err := geosocial.LoadDataset(*in)
	if err != nil {
		log.Fatal(err)
	}

	v := &core.Validator{
		Params:      core.Params{Alpha: *alpha, Beta: *beta},
		VisitConfig: visits.DefaultConfig(),
	}
	outs, part, err := v.ValidateDataset(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %q: %d users\n", ds.Name, len(ds.Users))
	fmt.Printf("matching (alpha=%.0fm beta=%v): %v\n", *alpha, *beta, part)

	cls, err := classify.ClassifyAll(outs, classify.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	tot := classify.Totals(cls)
	fmt.Println("checkin taxonomy:")
	for _, k := range []classify.Kind{classify.Honest, classify.Superfluous, classify.Remote, classify.Driveby, classify.Other} {
		n := tot[k]
		fmt.Printf("  %-12s %6d (%.1f%%)\n", k, n, 100*float64(n)/maxf(float64(part.Checkins), 1))
	}

	if *truth {
		if sc, err := core.ScoreAgainstTruth(outs); err == nil {
			fmt.Printf("matcher vs ground truth: accuracy %.3f, honest precision %.3f, recall %.3f\n",
				sc.Accuracy, sc.HonestP, sc.HonestR)
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
