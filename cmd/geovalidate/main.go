// Command geovalidate runs the §4–§5 validation pipeline on a saved
// dataset: visit detection, checkin-to-visit matching (α = 500 m,
// β = 30 min), the Figure 1 partition, and the extraneous-checkin
// taxonomy.
//
// Usage:
//
//	geovalidate -in primary.json.gz
//	geovalidate -in primary.bin.gz                # binary datasets stream
//	geovalidate -in primary.manifest.json         # sharded corpus, shards in parallel
//	geovalidate -in ./data                        # directory with one manifest
//	geovalidate -in primary.json.gz -alpha 250 -beta 15m
//	geovalidate -in primary.json.gz -workers 8    # validate users on 8 workers
//	geovalidate -in primary.bin.gz -json          # machine-readable StreamResult
//	geovalidate -in primary.bin.gz -outcomes out.gso   # + columnar outcome log
//	geovalidate -in primary.manifest.json -checkpoint ./ckpt   # resumable run
//	geovalidate -in grown.manifest.json -update-from prev.json -prev-outcomes prev.gso
//	geovalidate -in primary.bin.gz -cpuprofile cpu.pprof -memprofile mem.pprof
//	geovalidate -in primary.bin.gz -report text   # per-stage span breakdown on stderr
//	geovalidate -in primary.bin.gz -log-level debug -log-format json
//	geovalidate -version
//
// The dataset encoding (JSON or binary, gzip or not) is detected from
// magic bytes, not the file name. Binary datasets are validated one
// user at a time through a bounded in-flight window — raw frames are
// fetched sequentially and decoded on the worker pool — so memory stays
// O(workers) regardless of dataset size; JSON datasets are loaded in
// memory first. When -in names a shard-set manifest (or a directory
// holding one), the shards are read concurrently and validated as one
// corpus; the report is identical to validating the equivalent single
// file and adds a per-shard line (or, with -json, per-shard stats).
// The -workers flag controls per-user pipeline parallelism (0 = all
// cores); results are identical for any worker count and for the
// streaming and in-memory paths.
//
// With -outcomes the run additionally writes a GSO1 columnar outcome
// log (gzip when the path ends in ".gz"): one compact record per user
// carrying everything the §5–§7 analyses need, for geoanalyze to
// consume without revalidating. The log bytes are identical for any
// -workers value and for any shard split of the same dataset.
//
// With -checkpoint a shard-set validation becomes resumable: each
// completed shard's results are persisted atomically in the given
// directory, and a rerun after a crash or kill skips the checkpointed
// shards, replays their outcomes, and produces output byte-identical
// to an uninterrupted run (see docs/FORMAT.md for the fragment
// format). Checkpoints are keyed by the manifest, the shard bytes, and
// the validation parameters, so a stale or mismatched checkpoint is
// never reused. The flag is ignored for single-file datasets.
// -checkpoint-stale tunes how old an interrupted run's leftover
// temporary files must be before a resuming run deletes them.
//
// With -update-from (and its required companion -prev-outcomes) the
// run is incremental: -in must name a manifest grown by appended
// delta generations (geoappend), -update-from the -json document and
// -prev-outcomes the outcome log of a validation of an earlier
// generation. Only users the appended deltas touched are revalidated;
// the report, the -json document, and the -outcomes log are
// byte-identical to a full cold run on the same manifest.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"geosocial"
	"geosocial/internal/classify"
	"geosocial/internal/core"
	"geosocial/internal/obs"
)

// errUsage signals a flag-parse failure the flag package has already
// reported to stderr; main exits 2 without printing it again.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("geovalidate: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run executes the tool against args, writing its report to stdout and
// every log line (and the -report span breakdown) to stderr — stdout
// carries only the report or the -json document, so piping either never
// picks up log noise. It is the whole tool minus process concerns, so
// tests can drive it directly.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("geovalidate", flag.ContinueOnError)
	obsFlags := obs.RegisterCLIFlags(fs, "geovalidate")
	var (
		in       = fs.String("in", "", "dataset file, shard manifest, or directory holding one manifest")
		alpha    = fs.Float64("alpha", 500, "spatial matching threshold in meters")
		beta     = fs.Duration("beta", 30*time.Minute, "temporal matching threshold")
		truth    = fs.Bool("truth", true, "score the matcher against ground-truth labels when present")
		workers  = fs.Int("workers", 0, "per-user pipeline workers (0 = all cores, 1 = serial; results are identical)")
		asJSON   = fs.Bool("json", false, "emit the full StreamResult as JSON instead of the text report")
		outcomes = fs.String("outcomes", "", "write a GSO1 outcome log here for geoanalyze (gzip when ending in .gz)")
		ckpt     = fs.String("checkpoint", "", "checkpoint directory for resumable shard-set validation (completed shards are skipped on rerun)")
		ckStale  = fs.Duration("checkpoint-stale", 0, "age after which a crashed run's checkpoint temp files are swept (0 = default)")
		updFrom  = fs.String("update-from", "", "previous run's -json result document; revalidate only users the appended generations touched")
		prevLog  = fs.String("prev-outcomes", "", "previous run's outcome log, required with -update-from (supplies the superseded per-user records)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the validation here (inspect with go tool pprof)")
		memProf  = fs.String("memprofile", "", "write an allocation profile here after the validation completes")
		report   = fs.String("report", "", `write a per-stage pipeline span report to stderr after the run: "text" or "json"`)
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if obsFlags.PrintVersion(stdout) {
		return nil
	}
	logger, err := obsFlags.Logger(stderr)
	if err != nil {
		return err
	}
	if *report != "" && *report != "text" && *report != "json" {
		return fmt.Errorf(`-report must be "text" or "json", not %q`, *report)
	}
	if *in == "" {
		return fmt.Errorf("missing -in dataset file (generate one with geogen)")
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("create -cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return fmt.Errorf("create -memprofile: %w", err)
		}
		// Written on the way out so the profile covers the whole run;
		// an extra GC first makes the live-heap numbers meaningful.
		defer func() {
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				logger.Errorf("write -memprofile: %v", err)
			}
		}()
	}
	opts := geosocial.StreamOptions{
		Params:          core.Params{Alpha: *alpha, Beta: *beta},
		Workers:         *workers,
		OutcomeLog:      *outcomes,
		CheckpointDir:   *ckpt,
		CheckpointStale: *ckStale,
		// Checkpoint lifecycle lines (hits, writes, unreadable
		// fragments) go through the structured logger to stderr so they
		// never disturb the report or the -json document on stdout.
		// -quiet / -log-level off silence them.
		Logf: logger.Printf,
	}
	if *report != "" {
		// Span collection is opt-in: a nil collector costs the pipeline
		// nothing, and results are byte-identical either way.
		opts.Spans = obs.NewCollector()
	}
	var res *geosocial.StreamResult
	if *updFrom != "" {
		if *prevLog == "" {
			return fmt.Errorf("-update-from requires -prev-outcomes (the previous run's outcome log)")
		}
		prev, perr := loadPrevResult(*updFrom)
		if perr != nil {
			return perr
		}
		res, err = geosocial.UpdateValidation(*in, prev, *prevLog, opts)
	} else {
		if *prevLog != "" {
			return fmt.Errorf("-prev-outcomes is only meaningful with -update-from")
		}
		res, err = geosocial.ValidateFileOpts(*in, opts)
	}
	if err != nil {
		return err
	}
	if !*truth {
		res.Truth = nil
	}

	// The span report goes to stderr after the primary output, so
	// stdout stays byte-identical with and without -report.
	emitSpans := func() error {
		if opts.Spans == nil {
			return nil
		}
		rep := opts.Spans.Report()
		if *report == "json" {
			return rep.WriteJSON(stderr)
		}
		return rep.WriteText(stderr)
	}

	if *asJSON {
		// The shared presentation encoding keeps this output
		// byte-comparable with the geoserve HTTP API.
		if err := core.WriteIndentedJSON(stdout, res); err != nil {
			return err
		}
		return emitSpans()
	}

	fmt.Fprintf(stdout, "dataset %q (%s): %d users\n", res.Name, res.Format, res.Users)
	fmt.Fprintf(stdout, "matching (alpha=%.0fm beta=%v): %v\n", *alpha, *beta, res.Partition)

	fmt.Fprintln(stdout, "checkin taxonomy:")
	for _, k := range []classify.Kind{classify.Honest, classify.Superfluous, classify.Remote, classify.Driveby, classify.Other} {
		n := res.Taxonomy[k.String()]
		fmt.Fprintf(stdout, "  %-12s %6d (%.1f%%)\n", k, n, 100*float64(n)/maxf(float64(res.Partition.Checkins), 1))
	}

	if res.Truth != nil {
		fmt.Fprintf(stdout, "matcher vs ground truth: accuracy %.3f, honest precision %.3f, recall %.3f\n",
			res.Truth.Accuracy, res.Truth.HonestP, res.Truth.HonestR)
	}

	for _, st := range res.Shards {
		fmt.Fprintf(stdout, "shard %s: %d users, honest=%d extraneous=%d missing=%d\n",
			st.Path, st.Users, st.Partition.Honest, st.Partition.Extraneous, st.Partition.Missing)
	}
	if *outcomes != "" {
		fmt.Fprintf(stdout, "outcome log: %s (analyze with geoanalyze)\n", *outcomes)
	}
	return emitSpans()
}

// loadPrevResult decodes a previous run's -json document for
// -update-from. The document must be the unmodified StreamResult JSON
// (in particular with its truth block intact) or the updated result
// would diverge from a cold revalidation.
func loadPrevResult(path string) (*geosocial.StreamResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prev geosocial.StreamResult
	if err := json.Unmarshal(raw, &prev); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	return &prev, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
