// Command benchjson converts `go test -bench` output into a JSON
// document, so CI can archive benchmark results as machine-readable
// perf-trajectory artifacts (BENCH_*.json) instead of log lines.
//
// Usage:
//
//	go test -run '^$' -bench ValidateShards -benchtime 1x . | benchjson -o BENCH_shards.json
//	benchjson bench.txt                    # read a saved log, write stdout
//	benchjson -compare bench/BASELINE_ingest.json BENCH_ingest.json
//
// Each benchmark line becomes one record: the benchmark name (with the
// -cpu suffix split off), iteration count, ns/op, and every extra
// metric the benchmark reported (MB/s, B/op, allocs/op, custom
// b.ReportMetric units) keyed by unit. Non-benchmark lines are ignored,
// so the tool can eat a whole `go test` transcript.
//
// With -compare the tool becomes a regression gate: the argument is a
// baseline JSON document (a previous benchjson output), the input is
// the current run (transcript or JSON), and the tool exits non-zero if
// any gated metric regressed beyond -tolerance. Gated metrics are
// "users/s" (higher is better) and "allocs/op" (lower is better, with
// -alloc-slack absolute headroom so tiny counts don't flap); both are
// chosen for being meaningful across runs — throughput relative to the
// recorded baseline, allocation counts near-deterministically.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"geosocial/internal/obs"
)

// errUsage signals a flag-parse failure the flag package has already
// reported to stderr; main exits 2 without printing it again.
var errUsage = errors.New("usage")

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name, e.g. "BenchmarkValidateShards/shards=4".
	Name string `json:"name"`
	// CPUs is the GOMAXPROCS suffix ("-8") if present, else 0.
	CPUs int `json:"cpus,omitempty"`
	// Iterations is the b.N the measurement ran at.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline latency metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every further "<value> <unit>" pair on the line,
	// keyed by unit (e.g. "MB/s", "allocs/op", "users/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run executes the tool against args: zero or one input path (default
// stdin), -o for the output path (default stdout), -compare for the
// regression-gate mode.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	ver := obs.RegisterVersionFlag(fs)
	out := fs.String("o", "", "output file (default stdout)")
	compare := fs.String("compare", "", "baseline JSON to gate the input against (regression mode)")
	tolerance := fs.Float64("tolerance", 0.25, "relative regression band for gated metrics")
	allocSlack := fs.Float64("alloc-slack", 8, "absolute allocs/op headroom on top of the relative band")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if obs.PrintVersionIf(*ver, stdout, "benchjson") {
		return nil
	}
	in := stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("at most one input file, got %d", fs.NArg())
	}

	if *compare != "" {
		if *out != "" {
			return fmt.Errorf("-o and -compare are mutually exclusive")
		}
		if *tolerance < 0 || *tolerance >= 1 {
			return fmt.Errorf("-tolerance must be in [0, 1), got %g", *tolerance)
		}
		bf, err := os.Open(*compare)
		if err != nil {
			return err
		}
		defer bf.Close()
		baseline, err := loadResults(bf)
		if err != nil {
			return fmt.Errorf("baseline %s: %w", *compare, err)
		}
		current, err := loadResults(in)
		if err != nil {
			return fmt.Errorf("current input: %w", err)
		}
		return Compare(baseline, current, *tolerance, *allocSlack, stdout)
	}

	results, err := Parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// loadResults reads benchmark results from r: a benchjson JSON document
// (first non-space byte '[') or a raw `go test -bench` transcript.
func loadResults(r io.Reader) ([]Result, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	for {
		b, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("empty input")
		}
		if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		if err := br.UnreadByte(); err != nil {
			return nil, err
		}
		if b == '[' {
			var results []Result
			if err := json.NewDecoder(br).Decode(&results); err != nil {
				return nil, fmt.Errorf("decode results JSON: %w", err)
			}
			return results, nil
		}
		results, err := Parse(br)
		if err != nil {
			return nil, err
		}
		if len(results) == 0 {
			return nil, fmt.Errorf("no benchmark lines in input")
		}
		return results, nil
	}
}

// gatedMetrics are the metrics Compare enforces, with their direction.
// Throughput is meaningful relative to the machine that recorded the
// baseline; allocation counts are near-deterministic everywhere.
var gatedMetrics = []struct {
	unit         string
	higherBetter bool
}{
	{"users/s", true},
	{"allocs/op", false},
}

// Compare gates current against baseline: for every baseline record,
// the matching current record (by name) must exist and its gated
// metrics must not regress beyond the relative tolerance (plus, for
// allocs/op, allocSlack absolute headroom). A human-readable report
// goes to w; any regression makes the returned error non-nil.
func Compare(baseline, current []Result, tolerance, allocSlack float64, w io.Writer) error {
	// Index the current run by name, keeping the best value per metric
	// across repeated runs of the same benchmark (-count > 1).
	type best struct{ metrics map[string]float64 }
	cur := make(map[string]best)
	for _, r := range current {
		b, ok := cur[r.Name]
		if !ok {
			b = best{metrics: make(map[string]float64)}
		}
		for _, gm := range gatedMetrics {
			v, has := r.Metrics[gm.unit]
			if !has {
				continue
			}
			old, seen := b.metrics[gm.unit]
			if !seen || (gm.higherBetter && v > old) || (!gm.higherBetter && v < old) {
				b.metrics[gm.unit] = v
			}
		}
		cur[r.Name] = b
	}

	var regressions []string
	checked := 0
	for _, base := range baseline {
		c, ok := cur[base.Name]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: present in baseline, missing from current run", base.Name))
			continue
		}
		for _, gm := range gatedMetrics {
			bv, has := base.Metrics[gm.unit]
			if !has {
				continue
			}
			cv, has := c.metrics[gm.unit]
			if !has {
				regressions = append(regressions,
					fmt.Sprintf("%s: baseline records %s, current run does not", base.Name, gm.unit))
				continue
			}
			checked++
			var bad bool
			var limit float64
			if gm.higherBetter {
				limit = bv * (1 - tolerance)
				bad = cv < limit
			} else {
				limit = bv*(1+tolerance) + allocSlack
				bad = cv > limit
			}
			status := "ok"
			if bad {
				status = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %.4g vs baseline %.4g (limit %.4g)", base.Name, gm.unit, cv, bv, limit))
			}
			fmt.Fprintf(w, "%-12s %s %s: %.4g (baseline %.4g, limit %.4g)\n",
				status, base.Name, gm.unit, cv, bv, limit)
		}
	}
	if checked == 0 && len(regressions) == 0 {
		return fmt.Errorf("baseline has no gated metrics (%v)", func() []string {
			units := make([]string, len(gatedMetrics))
			for i, gm := range gatedMetrics {
				units[i] = gm.unit
			}
			return units
		}())
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark regression(s):\n  %s",
			len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "benchjson: %d gated metric(s) within tolerance %.0f%%\n", checked, tolerance*100)
	return nil
}

// Parse extracts every benchmark result line from a `go test -bench`
// transcript.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if ok {
			out = append(out, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine parses one "BenchmarkX-8  N  v ns/op  v unit ..." line.
// Anything that does not look like a benchmark line reports !ok.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	res := Result{Name: fields[0]}
	// Split a trailing GOMAXPROCS suffix: "Name/case-8" -> "Name/case".
	if i := strings.LastIndexByte(res.Name, '-'); i > 0 {
		if cpus, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.CPUs = res.Name[:i], cpus
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iters
	// The rest of the line is "<value> <unit>" pairs.
	pairs := fields[2:]
	if len(pairs)%2 != 0 {
		return Result{}, false
	}
	for i := 0; i < len(pairs); i += 2 {
		v, err := strconv.ParseFloat(pairs[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := pairs[i+1]
		if unit == "ns/op" {
			res.NsPerOp = v
			continue
		}
		if res.Metrics == nil {
			res.Metrics = make(map[string]float64)
		}
		res.Metrics[unit] = v
	}
	return res, true
}
