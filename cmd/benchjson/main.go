// Command benchjson converts `go test -bench` output into a JSON
// document, so CI can archive benchmark results as machine-readable
// perf-trajectory artifacts (BENCH_*.json) instead of log lines.
//
// Usage:
//
//	go test -run '^$' -bench ValidateShards -benchtime 1x . | benchjson -o BENCH_shards.json
//	benchjson bench.txt                    # read a saved log, write stdout
//
// Each benchmark line becomes one record: the benchmark name (with the
// -cpu suffix split off), iteration count, ns/op, and every extra
// metric the benchmark reported (MB/s, B/op, allocs/op, custom
// b.ReportMetric units) keyed by unit. Non-benchmark lines are ignored,
// so the tool can eat a whole `go test` transcript.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// errUsage signals a flag-parse failure the flag package has already
// reported to stderr; main exits 2 without printing it again.
var errUsage = errors.New("usage")

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name, e.g. "BenchmarkValidateShards/shards=4".
	Name string `json:"name"`
	// CPUs is the GOMAXPROCS suffix ("-8") if present, else 0.
	CPUs int `json:"cpus,omitempty"`
	// Iterations is the b.N the measurement ran at.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline latency metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every further "<value> <unit>" pair on the line,
	// keyed by unit (e.g. "MB/s", "allocs/op", "users/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run executes the tool against args: zero or one input path (default
// stdin), -o for the output path (default stdout).
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	in := stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("at most one input file, got %d", fs.NArg())
	}

	results, err := Parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// Parse extracts every benchmark result line from a `go test -bench`
// transcript.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if ok {
			out = append(out, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine parses one "BenchmarkX-8  N  v ns/op  v unit ..." line.
// Anything that does not look like a benchmark line reports !ok.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	res := Result{Name: fields[0]}
	// Split a trailing GOMAXPROCS suffix: "Name/case-8" -> "Name/case".
	if i := strings.LastIndexByte(res.Name, '-'); i > 0 {
		if cpus, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.CPUs = res.Name[:i], cpus
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iters
	// The rest of the line is "<value> <unit>" pairs.
	pairs := fields[2:]
	if len(pairs)%2 != 0 {
		return Result{}, false
	}
	for i := 0; i < len(pairs); i += 2 {
		v, err := strconv.ParseFloat(pairs[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := pairs[i+1]
		if unit == "ns/op" {
			res.NsPerOp = v
			continue
		}
		if res.Metrics == nil {
			res.Metrics = make(map[string]float64)
		}
		res.Metrics[unit] = v
	}
	return res, true
}
