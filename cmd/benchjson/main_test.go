package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// transcript is a realistic `go test -bench` log: noise lines, sub-
// benchmarks, extra metrics, and allocation counters.
const transcript = `goos: linux
goarch: amd64
pkg: geosocial
cpu: Some CPU @ 2.80GHz
BenchmarkValidateShards/file-8         	       3	 425051612 ns/op	        94.00 users/s
BenchmarkValidateShards/shards=4-8     	       3	 130804269 ns/op	       305.0 users/s
BenchmarkCodecDecodeBinary-8           	     100	  12345678 ns/op	 512.34 MB/s	 1024 B/op	      17 allocs/op
PASS
ok  	geosocial	12.345s
`

func TestParseTranscript(t *testing.T) {
	results, err := Parse(strings.NewReader(transcript))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	first := results[0]
	if first.Name != "BenchmarkValidateShards/file" || first.CPUs != 8 {
		t.Errorf("first record name/cpus = %q/%d", first.Name, first.CPUs)
	}
	if first.Iterations != 3 || first.NsPerOp != 425051612 {
		t.Errorf("first record timing = %d iters, %g ns/op", first.Iterations, first.NsPerOp)
	}
	if first.Metrics["users/s"] != 94 {
		t.Errorf("first record users/s = %g, want 94", first.Metrics["users/s"])
	}
	third := results[2]
	if third.Metrics["MB/s"] != 512.34 || third.Metrics["allocs/op"] != 17 {
		t.Errorf("third record metrics = %v", third.Metrics)
	}
}

func TestRunStdinToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := run([]string{"-o", out}, strings.NewReader(transcript), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(raw, &results); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("round-tripped %d results, want 3", len(results))
	}
}

func TestRunFileArgToStdout(t *testing.T) {
	in := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(in, []byte(transcript), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{in}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"BenchmarkValidateShards/shards=4"`) {
		t.Errorf("stdout JSON missing sub-benchmark name:\n%s", out.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

// writeBaseline writes a baseline JSON fixture and returns its path.
func writeBaseline(t *testing.T, results []Result) string {
	t.Helper()
	raw, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// gateBaseline is the fixture the -compare self-tests gate against.
func gateBaseline() []Result {
	return []Result{
		{Name: "BenchmarkValidateShards/file", Iterations: 3,
			Metrics: map[string]float64{"users/s": 400}},
		{Name: "BenchmarkCodecDecodeFrames", Iterations: 100,
			Metrics: map[string]float64{"allocs/op": 2}},
	}
}

// currentTranscript renders a synthetic current run at the given
// throughput and allocation count.
func currentTranscript(usersPerSec float64, allocs int) string {
	return fmt.Sprintf("goos: linux\n"+
		"BenchmarkValidateShards/file-8 \t 3\t 1000 ns/op\t %.2f users/s\n"+
		"BenchmarkCodecDecodeFrames-8 \t 100\t 2000 ns/op\t 64 B/op\t %d allocs/op\n"+
		"PASS\n", usersPerSec, allocs)
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := writeBaseline(t, gateBaseline())
	var out bytes.Buffer
	// 10% below baseline throughput, same allocs: inside the 25% band.
	err := run([]string{"-compare", base}, strings.NewReader(currentTranscript(360, 2)), &out)
	if err != nil {
		t.Fatalf("in-tolerance run gated: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("report lacks ok lines:\n%s", out.String())
	}
}

func TestCompareFailsOnThroughputRegression(t *testing.T) {
	// The synthetic regression fixture: throughput collapses to half the
	// baseline, far outside the 25% tolerance band. The gate must fail.
	base := writeBaseline(t, gateBaseline())
	var out bytes.Buffer
	err := run([]string{"-compare", base}, strings.NewReader(currentTranscript(200, 2)), &out)
	if err == nil {
		t.Fatalf("50%% throughput regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "users/s") {
		t.Errorf("regression error does not name the metric: %v", err)
	}
}

func TestCompareFailsOnAllocRegression(t *testing.T) {
	base := writeBaseline(t, gateBaseline())
	var out bytes.Buffer
	// 40 allocs/op vs baseline 2: beyond 2*(1+0.25)+8.
	err := run([]string{"-compare", base}, strings.NewReader(currentTranscript(400, 40)), &out)
	if err == nil {
		t.Fatalf("allocation regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("regression error does not name the metric: %v", err)
	}
}

func TestCompareFailsOnMissingBenchmark(t *testing.T) {
	base := writeBaseline(t, gateBaseline())
	var out bytes.Buffer
	only := "BenchmarkValidateShards/file-8 \t 3\t 1000 ns/op\t 400.00 users/s\n"
	err := run([]string{"-compare", base}, strings.NewReader(only), &out)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("vanished benchmark not flagged: %v", err)
	}
}

func TestCompareAcceptsJSONCurrent(t *testing.T) {
	base := writeBaseline(t, gateBaseline())
	cur := writeBaseline(t, gateBaseline()) // identical run
	f, err := os.Open(cur)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out bytes.Buffer
	if err := run([]string{"-compare", base}, f, &out); err != nil {
		t.Fatalf("identical JSON run gated: %v\n%s", err, out.String())
	}
}

func TestCompareRejectsOutputFlag(t *testing.T) {
	base := writeBaseline(t, gateBaseline())
	err := run([]string{"-compare", base, "-o", "x.json"}, strings.NewReader(""), &bytes.Buffer{})
	if err == nil {
		t.Fatal("-compare with -o accepted")
	}
}
