package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// transcript is a realistic `go test -bench` log: noise lines, sub-
// benchmarks, extra metrics, and allocation counters.
const transcript = `goos: linux
goarch: amd64
pkg: geosocial
cpu: Some CPU @ 2.80GHz
BenchmarkValidateShards/file-8         	       3	 425051612 ns/op	        94.00 users/s
BenchmarkValidateShards/shards=4-8     	       3	 130804269 ns/op	       305.0 users/s
BenchmarkCodecDecodeBinary-8           	     100	  12345678 ns/op	 512.34 MB/s	 1024 B/op	      17 allocs/op
PASS
ok  	geosocial	12.345s
`

func TestParseTranscript(t *testing.T) {
	results, err := Parse(strings.NewReader(transcript))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	first := results[0]
	if first.Name != "BenchmarkValidateShards/file" || first.CPUs != 8 {
		t.Errorf("first record name/cpus = %q/%d", first.Name, first.CPUs)
	}
	if first.Iterations != 3 || first.NsPerOp != 425051612 {
		t.Errorf("first record timing = %d iters, %g ns/op", first.Iterations, first.NsPerOp)
	}
	if first.Metrics["users/s"] != 94 {
		t.Errorf("first record users/s = %g, want 94", first.Metrics["users/s"])
	}
	third := results[2]
	if third.Metrics["MB/s"] != 512.34 || third.Metrics["allocs/op"] != 17 {
		t.Errorf("third record metrics = %v", third.Metrics)
	}
}

func TestRunStdinToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := run([]string{"-o", out}, strings.NewReader(transcript), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(raw, &results); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("round-tripped %d results, want 3", len(results))
	}
}

func TestRunFileArgToStdout(t *testing.T) {
	in := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(in, []byte(transcript), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{in}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"BenchmarkValidateShards/shards=4"`) {
		t.Errorf("stdout JSON missing sub-benchmark name:\n%s", out.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("empty input accepted")
	}
}
