package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"geosocial/internal/rng"
	"geosocial/internal/synth"
)

func TestRunReportsPerModelMetrics(t *testing.T) {
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.03), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "primary.json.gz")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	// A tiny topology keeps the smoke test to seconds.
	err = run([]string{
		"-in", path, "-nodes", "12", "-flows", "3", "-duration", "60", "-workers", "4",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "model") || !strings.Contains(got, "delivery") {
		t.Errorf("missing metrics header:\n%s", got)
	}
	// One row per fitted mobility model (gps, honest-checkin, all-checkin).
	if lines := strings.Count(strings.TrimSpace(got), "\n"); lines < 3 {
		t.Errorf("expected >= 3 model rows, got %d lines:\n%s", lines, got)
	}
}

func TestRunRequiresInput(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error when -in is missing")
	}
}
