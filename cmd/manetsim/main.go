// Command manetsim runs the standalone MANET (AODV) simulator over
// Levy-walk mobility fitted from a saved dataset — the §6.2 experiment as
// a single tool. It reports the three paper metrics per mobility model.
//
// Usage:
//
//	manetsim -in primary.json.gz -nodes 200 -flows 100 -duration 3600
//	manetsim -in primary.json.gz -workers 8   # validate the dataset on 8 workers
//
// The -workers flag controls per-user validation parallelism while the
// mobility models are fitted (0 = all cores); results are identical for
// any worker count.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"geosocial"
	"geosocial/internal/obs"
	"geosocial/internal/stats"
)

// errUsage signals a flag-parse failure the flag package has already
// reported to stderr; main exits 2 without printing it again.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("manetsim: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run executes the tool against args, writing its report to stdout. It is
// the whole tool minus process concerns, so tests can drive it directly.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("manetsim", flag.ContinueOnError)
	ver := obs.RegisterVersionFlag(fs)
	var (
		in       = fs.String("in", "", "dataset file (JSON, .gz supported)")
		nodes    = fs.Int("nodes", 200, "node count")
		flows    = fs.Int("flows", 100, "CBR flow count")
		duration = fs.Float64("duration", 3600, "simulated seconds")
		seed     = fs.Uint64("seed", 42, "RNG seed")
		workers  = fs.Int("workers", 0, "per-user validation workers (0 = all cores, 1 = serial; results are identical)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if obs.PrintVersionIf(*ver, stdout, "manetsim") {
		return nil
	}
	if *in == "" {
		return fmt.Errorf("missing -in dataset file (generate one with geogen)")
	}
	ds, err := geosocial.LoadDataset(*in)
	if err != nil {
		return err
	}
	res, err := geosocial.ValidateDatasetWorkers(ds, *workers)
	if err != nil {
		return err
	}
	outs, err := res.RunMANET(geosocial.MANETConfig{
		Nodes: *nodes, Flows: *flows, Duration: *duration, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-16s %-10s %-12s %-12s %-10s %-10s\n",
		"model", "delivery", "changes/min", "availability", "overhead", "avgHops")
	for _, o := range outs {
		m := o.Metrics
		fmt.Fprintf(stdout, "%-16s %-10.3f %-12.3f %-12.3f %-10.2f %-10.2f\n",
			o.Model,
			m.DeliveryRatio,
			stats.Mean(m.RouteChangesPerMin),
			stats.Mean(m.Availability),
			stats.Quantile(m.Overhead, 0.5),
			m.AvgHops,
		)
	}
	return nil
}
