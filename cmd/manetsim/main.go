// Command manetsim runs the standalone MANET (AODV) simulator over
// Levy-walk mobility fitted from a saved dataset — the §6.2 experiment as
// a single tool. It reports the three paper metrics per mobility model.
//
// Usage:
//
//	manetsim -in primary.json.gz -nodes 200 -flows 100 -duration 3600
package main

import (
	"flag"
	"fmt"
	"log"

	"geosocial"
	"geosocial/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("manetsim: ")
	var (
		in       = flag.String("in", "", "dataset file (JSON, .gz supported)")
		nodes    = flag.Int("nodes", 200, "node count")
		flows    = flag.Int("flows", 100, "CBR flow count")
		duration = flag.Float64("duration", 3600, "simulated seconds")
		seed     = flag.Uint64("seed", 42, "RNG seed")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("missing -in dataset file (generate one with geogen)")
	}
	ds, err := geosocial.LoadDataset(*in)
	if err != nil {
		log.Fatal(err)
	}
	res, err := geosocial.ValidateDataset(ds)
	if err != nil {
		log.Fatal(err)
	}
	outs, err := res.RunMANET(geosocial.MANETConfig{
		Nodes: *nodes, Flows: *flows, Duration: *duration, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %-10s %-12s %-12s %-10s %-10s\n",
		"model", "delivery", "changes/min", "availability", "overhead", "avgHops")
	for _, o := range outs {
		m := o.Metrics
		fmt.Printf("%-16s %-10.3f %-12.3f %-12.3f %-10.2f %-10.2f\n",
			o.Model,
			m.DeliveryRatio,
			stats.Mean(m.RouteChangesPerMin),
			stats.Mean(m.Availability),
			stats.Quantile(m.Overhead, 0.5),
			m.AvgHops,
		)
	}
}
