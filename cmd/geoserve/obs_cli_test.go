package main

// Tests for the observability command-line surface: -version and the
// stdout/stderr separation contract — the listen banner and shutdown
// notice stay on stdout for scripts to parse, while every lifecycle log
// line goes through the structured logger to stderr.

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"geosocial/internal/obs"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the spool watcher and job
// runner log from their own goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	want := obs.VersionString("geoserve") + "\n"
	if out.String() != want {
		t.Fatalf("stdout = %q, want %q", out.String(), want)
	}
	if errb.Len() != 0 {
		t.Fatalf("-version wrote to stderr: %q", errb.String())
	}
}

// TestLifecycleLogsOnStderr uploads a dataset and checks the split: the
// banner and shutdown notice on stdout, the structured validation log
// lines on stderr, and neither leaking into the other.
func TestLifecycleLogsOnStderr(t *testing.T) {
	dataset := saveDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &bannerWriter{addr: make(chan string, 1)}
	errOut := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-spool", t.TempDir(), "-poll", "50ms"}, out, errOut)
	}()
	var baseURL string
	select {
	case addr := <-out.addr:
		baseURL = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("no banner")
	}
	upload(t, baseURL, dataset)

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return")
	}

	stdout, stderr := out.String(), errOut.String()
	if !strings.Contains(stdout, "listening on http://") || !strings.Contains(stdout, "shutting down") {
		t.Errorf("banner or shutdown notice missing from stdout:\n%s", stdout)
	}
	if strings.Contains(stdout, "level=") {
		t.Errorf("structured log lines leaked onto stdout:\n%s", stdout)
	}
	if !strings.Contains(stderr, "level=info") || !strings.Contains(stderr, "validated") {
		t.Errorf("validation log lines missing from stderr:\n%s", stderr)
	}
	if strings.Contains(stderr, "listening on http://") {
		t.Errorf("banner leaked onto stderr:\n%s", stderr)
	}
}

// TestQuietSilencesLifecycleLogs pins -quiet: the banner still appears
// (stdout is not log output) but stderr stays empty.
func TestQuietSilencesLifecycleLogs(t *testing.T) {
	dataset := saveDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &bannerWriter{addr: make(chan string, 1)}
	errOut := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-spool", t.TempDir(), "-quiet"}, out, errOut)
	}()
	var baseURL string
	select {
	case addr := <-out.addr:
		baseURL = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("no banner")
	}
	upload(t, baseURL, dataset)

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return")
	}
	if got := errOut.String(); got != "" {
		t.Errorf("-quiet still wrote to stderr:\n%s", got)
	}
}
