package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"geosocial"
)

// bannerWriter captures run()'s stdout and signals the resolved listen
// address as soon as the banner appears.
type bannerWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	addr  chan string
	found bool
}

var bannerRE = regexp.MustCompile(`listening on http://([^ \n]+)`)

func (w *bannerWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.found {
		if m := bannerRE.FindSubmatch(w.buf.Bytes()); m != nil {
			w.found = true
			w.addr <- string(m[1])
		}
	}
	return len(p), nil
}

func (w *bannerWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// startServer runs the tool on an ephemeral port and returns its base
// URL plus a shutdown func that asserts a clean exit.
func startServer(t *testing.T, extraArgs ...string) (baseURL string, out *bannerWriter, shutdown func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out = &bannerWriter{addr: make(chan string, 1)}
	args := append([]string{"-addr", "127.0.0.1:0", "-spool", t.TempDir(), "-poll", "50ms"}, extraArgs...)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, args, out, io.Discard) }()
	select {
	case addr := <-out.addr:
		baseURL = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never printed its listen banner")
	}
	return baseURL, out, func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("run returned %v on shutdown", err)
			}
		case <-time.After(15 * time.Second):
			t.Error("run did not return after cancel")
		}
	}
}

// saveDataset generates the small deterministic study used across the
// e2e tests and saves its primary dataset as a binary file.
func saveDataset(t *testing.T) string {
	t.Helper()
	study, err := geosocial.GenerateStudy(geosocial.StudyConfig{Scale: 0.05, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "primary.bin.gz")
	if err := study.Primary.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// jobInfo mirrors the service's job JSON for decoding in tests.
type jobInfo struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
	Users  int    `json:"users"`
	Error  string `json:"error"`
}

// upload POSTs the file and waits for validation to finish.
func upload(t *testing.T, baseURL, path string) (jobInfo, *http.Response) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	resp, err := http.Post(baseURL+"/v1/datasets?wait=1", "application/octet-stream", f)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info jobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode upload response: %v", err)
	}
	return info, resp
}

// getBody fetches a URL and returns the raw body and response.
func getBody(t *testing.T, url string) ([]byte, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data, resp
}

// serviceJSON reproduces the service's JSON encoding (two-space indent,
// trailing newline — the same encoding geovalidate -json uses), so
// expected documents can be compared byte-for-byte.
func serviceJSON(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// metricValue extracts one counter from the /metrics text.
func metricValue(t *testing.T, metrics, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, name+" %f", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, metrics)
	return 0
}

// TestEndToEnd is the acceptance path: upload → validate → fetch the
// partition twice — the second fetch is a cache hit and no second
// validation runs — with the served partition byte-identical to the
// facade's ValidateFileWorkers (geovalidate's engine; the geovalidate
// run() comparison lives in cmd/geovalidate) at workers 1 and 8.
func TestEndToEnd(t *testing.T) {
	dataset := saveDataset(t)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			baseURL, _, shutdown := startServer(t, "-workers", fmt.Sprint(workers))
			defer shutdown()

			info, resp := upload(t, baseURL, dataset)
			if info.Status != "done" {
				t.Fatalf("upload job not done: %+v", info)
			}
			if resp.Header.Get("X-Cache") != "miss" {
				t.Fatalf("first upload X-Cache = %q", resp.Header.Get("X-Cache"))
			}

			want, err := geosocial.ValidateFileWorkers(dataset, workers)
			if err != nil {
				t.Fatal(err)
			}
			wantPartition := serviceJSON(t, want.Partition)

			// First fetch.
			got1, r1 := getBody(t, baseURL+"/v1/datasets/"+info.ID+"/partition")
			if !bytes.Equal(got1, wantPartition) {
				t.Fatalf("served partition differs from the validation engine's:\n%s\nvs\n%s", got1, wantPartition)
			}
			// Second fetch: byte-identical again, and a cache hit.
			got2, r2 := getBody(t, baseURL+"/v1/datasets/"+info.ID+"/partition")
			if !bytes.Equal(got1, got2) {
				t.Fatal("two fetches of the same partition differ")
			}
			if r1.Header.Get("X-Cache") != "hit" || r2.Header.Get("X-Cache") != "hit" {
				t.Fatalf("partition fetches not served from cache: %q, %q",
					r1.Header.Get("X-Cache"), r2.Header.Get("X-Cache"))
			}

			// Exactly one validation ran; the fetches hit the cache.
			metrics, _ := getBody(t, baseURL+"/metrics")
			if v := metricValue(t, string(metrics), "geoserve_datasets_validated_total"); v != 1 {
				t.Fatalf("validations = %v, want 1", v)
			}
			if v := metricValue(t, string(metrics), "geoserve_cache_hits_total"); v < 2 {
				t.Fatalf("cache hits = %v, want >= 2", v)
			}
			if v := metricValue(t, string(metrics), "geoserve_users_validated_total"); v != float64(want.Users) {
				t.Fatalf("users validated = %v, want %d", v, want.Users)
			}

			// Re-uploading identical bytes never revalidates.
			again, resp2 := upload(t, baseURL, dataset)
			if again.ID != info.ID || resp2.Header.Get("X-Cache") != "hit" {
				t.Fatalf("duplicate upload: %+v X-Cache=%q", again, resp2.Header.Get("X-Cache"))
			}
			metrics, _ = getBody(t, baseURL+"/metrics")
			if v := metricValue(t, string(metrics), "geoserve_datasets_validated_total"); v != 1 {
				t.Fatalf("duplicate upload revalidated: %v", v)
			}

			// Full result document agrees with the engine too.
			var doc struct {
				Result *geosocial.StreamResult `json:"result"`
			}
			body, _ := getBody(t, baseURL+"/v1/datasets/"+info.ID)
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatal(err)
			}
			if doc.Result == nil {
				t.Fatal("dataset document has no result")
			}
			// The served document was decoded from the cache; shards are
			// nil for a plain file on both sides.
			if !bytes.Equal(serviceJSON(t, doc.Result), serviceJSON(t, want)) {
				t.Fatalf("served result differs from engine result:\n%s\nvs\n%s",
					serviceJSON(t, doc.Result), serviceJSON(t, want))
			}
		})
	}
}

// TestSpoolPickup drops a dataset into the spool directory and lets the
// watcher find it.
func TestSpoolPickup(t *testing.T) {
	dataset := saveDataset(t)
	spool := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &bannerWriter{addr: make(chan string, 1)}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-spool", spool, "-poll", "20ms"}, out, io.Discard)
	}()
	var baseURL string
	select {
	case addr := <-out.addr:
		baseURL = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("no banner")
	}

	// Copy the dataset into the spool; the watcher needs it stable
	// across two scans before ingesting.
	data, err := os.ReadFile(dataset)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(spool, "dropped.bin.gz"), data, 0o666); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		body, _ := getBody(t, baseURL+"/v1/datasets")
		var list struct {
			Datasets []jobInfo `json:"datasets"`
		}
		if err := json.Unmarshal(body, &list); err != nil {
			t.Fatal(err)
		}
		if len(list.Datasets) == 1 && list.Datasets[0].Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spooled dataset never validated: %s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("missing shutdown banner in output:\n%s", out.String())
	}
}

// TestDebugAddrServesPprof pins the -debug-addr contract: the pprof
// endpoint lives on its own listener, and the public API listener never
// exposes /debug/pprof.
func TestDebugAddrServesPprof(t *testing.T) {
	baseURL, out, shutdown := startServer(t, "-debug-addr", "127.0.0.1:0")
	defer shutdown()

	pprofRE := regexp.MustCompile(`pprof on http://([^/\s]+)`)
	m := pprofRE.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no pprof banner in output:\n%s", out.String())
	}
	body, resp := getBody(t, "http://"+m[1]+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("pprof cmdline: status %d, %d bytes", resp.StatusCode, len(body))
	}
	// The public listener must not expose the profiler.
	_, resp = getBody(t, baseURL+"/debug/pprof/")
	if resp.StatusCode == http.StatusOK {
		t.Fatal("public API listener serves /debug/pprof")
	}
}

func TestRunFlagErrors(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-nope"}, io.Discard, io.Discard); err != errUsage {
		t.Fatalf("bad flag: %v", err)
	}
	if err := run(ctx, nil, io.Discard, io.Discard); err == nil || !strings.Contains(err.Error(), "-spool") {
		t.Fatalf("missing -spool: %v", err)
	}
	if err := run(ctx, []string{"-h"}, io.Discard, io.Discard); err != nil {
		t.Fatalf("-h: %v", err)
	}
}
