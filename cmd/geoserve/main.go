// Command geoserve runs the long-running validation service: it
// watches a spool directory (and accepts HTTP uploads) for datasets —
// JSON, binary GSB1, or shard-set manifests — validates them through
// the same streaming engine geovalidate uses, and serves cached results
// over HTTP, keyed by dataset checksum so identical bytes are never
// validated twice.
//
// Usage:
//
//	geoserve -spool ./spool                       # serve on :8080
//	geoserve -spool ./spool -addr 127.0.0.1:9090
//	geoserve -spool ./spool -workers 8 -max-jobs 4 -cache 128
//	geoserve -spool ./spool -poll 500ms           # fast spool pickup
//	geoserve -spool ./spool -debug-addr 127.0.0.1:6060  # pprof endpoint
//
// Endpoints (full reference with curl examples in docs/API.md):
//
//	POST /v1/datasets                 upload a dataset (?wait=1 blocks)
//	POST /v1/datasets/{id}/append     append a GSB1 delta stream to a shard set
//	GET  /v1/datasets                 list datasets
//	GET  /v1/datasets/{id}            status + full StreamResult JSON
//	GET  /v1/datasets/{id}/partition  Figure 1 partition
//	GET  /v1/datasets/{id}/taxonomy   §5.1 taxonomy
//	GET  /v1/datasets/{id}/outcomes   raw GSO1 outcome log bytes
//	GET  /v1/datasets/{id}/analysis/{kind}  §5–§7 analysis (summary,
//	                                  correlations, detector, levy, tradeoff)
//	GET  /healthz                     liveness (JSON status + build version)
//	GET  /metrics                     Prometheus text-exposition metrics
//
// Results are byte-identical to geovalidate -json on the same dataset
// for any -workers value, and analysis documents to geoanalyze -json
// on the dataset's outcome log. Results and analyses persist in a
// "cache" directory under the spool (content-addressed by checksum,
// namespaced by a validation-parameter fingerprint), so a restarted
// server never revalidates bytes it has already seen — and never
// reuses results computed under different parameters; -no-disk-cache
// keeps the cache memory-only, -disk-cache-max bounds it. Outcome
// logs live under "outcomes" in the spool (-outcomes-max bounds
// them); -outcomes=false disables them and the analysis endpoints.
// With -checkpoints, shard-set validations write per-shard checkpoints
// under "checkpoints" in the spool (same parameter-fingerprint
// namespacing), so a job interrupted by a crash or restart resumes
// from its completed shards when retried; -checkpoints-max bounds the
// retained run directories and -checkpoint-stale tunes how old crash
// debris must be before it is swept. Shard sets accept live appends:
// POST /v1/datasets/{id}/append grows the corpus by a GSB1 delta
// stream and revalidates it incrementally — only the appended users'
// work is redone, and the new result is byte-identical to a cold
// validation of the grown corpus. The server shuts down gracefully on
// SIGINT / SIGTERM: in-flight validations and HTTP requests drain
// before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served only on -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"geosocial"
	"geosocial/internal/obs"
)

// errUsage signals a flag-parse failure the flag package has already
// reported to stderr; main exits 2 without printing it again.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("geoserve: ")
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run executes the service until ctx is cancelled. The listen banner
// (and shutdown notice) go to stdout — scripts and tests parse the
// banner for the resolved address — while every lifecycle log line
// (discovered, validated, failed, cache hit) goes through the
// structured logger to stderr, where -log-level / -log-format / -quiet
// control it. It is the whole tool minus process concerns, so tests
// can drive it directly.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("geoserve", flag.ContinueOnError)
	obsFlags := obs.RegisterCLIFlags(fs, "geoserve")
	var (
		addr         = fs.String("addr", ":8080", "HTTP listen address")
		spool        = fs.String("spool", "", "spool directory watched for datasets (required; created if missing)")
		workers      = fs.Int("workers", 0, "per-job pipeline workers (0 = all cores, 1 = serial; results are identical)")
		maxJobs      = fs.Int("max-jobs", 2, "concurrent validations; further datasets queue")
		cache        = fs.Int("cache", 64, "result-cache capacity in datasets (LRU, keyed by checksum)")
		poll         = fs.Duration("poll", 2*time.Second, "spool scan interval")
		outcomes     = fs.Bool("outcomes", true, "retain per-dataset outcome logs and serve the analysis endpoints")
		outcomesMax  = fs.Int("outcomes-max", 0, "max retained outcome logs, oldest pruned first (0 = unbounded)")
		noDiskCache  = fs.Bool("no-disk-cache", false, "keep the result cache memory-only (no cache/ dir under the spool)")
		diskCacheMax = fs.Int("disk-cache-max", 0, "max persisted result/analysis entries, oldest pruned first (0 = unbounded)")
		ckpts        = fs.Bool("checkpoints", false, "checkpoint shard-set validations under the spool so interrupted jobs resume")
		ckptsMax     = fs.Int("checkpoints-max", 8, "max retained checkpoint run directories, oldest pruned first (0 = unbounded)")
		ckptsStale   = fs.Duration("checkpoint-stale", 0, "age after which a crashed run's checkpoint temp files are swept (0 = default)")
		debugAddr    = fs.String("debug-addr", "", "serve net/http/pprof on this address (off by default; bind loopback, the endpoint is unauthenticated)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if obsFlags.PrintVersion(stdout) {
		return nil
	}
	logger, err := obsFlags.Logger(stderr)
	if err != nil {
		return err
	}
	if *spool == "" {
		return fmt.Errorf("missing -spool directory (datasets are watched for and uploaded there)")
	}

	srv, err := geosocial.NewServer(geosocial.ServerOptions{
		SpoolDir:          *spool,
		MaxJobs:           *maxJobs,
		CacheCapacity:     *cache,
		PollInterval:      *poll,
		Outcomes:          *outcomes,
		MaxOutcomeLogs:    *outcomesMax,
		NoDiskCache:       *noDiskCache,
		MaxDiskCache:      *diskCacheMax,
		Checkpoints:       *ckpts,
		MaxCheckpointRuns: *ckptsMax,
		CheckpointStale:   *ckptsStale,
		Stream:            geosocial.StreamOptions{Workers: *workers},
		Logf:              logger.Printf,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	if *debugAddr != "" {
		// Profiling lives on its own listener so the public API surface
		// never exposes it; the handlers sit on http.DefaultServeMux,
		// where the net/http/pprof import registered them.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("listen -debug-addr: %w", err)
		}
		defer dln.Close()
		fmt.Fprintf(stdout, "geoserve: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	// The banner reports the resolved address so -addr :0 is usable
	// (tests and scripts parse this line).
	fmt.Fprintf(stdout, "geoserve: listening on http://%s (spool %s)\n", ln.Addr(), *spool)

	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "geoserve: shutting down")
	// Close the service first (concurrently): it releases ?wait=1
	// long-pollers immediately, so Shutdown can drain their requests
	// instead of timing out on them, and then drains running
	// validations while HTTP winds down.
	closec := make(chan error, 1)
	go func() { closec <- srv.Close() }()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return <-closec
}
