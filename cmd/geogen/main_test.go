package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geosocial/internal/trace"
)

func TestRunGeneratesBothDatasets(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-scale", "0.02", "-seed", "7", "-out", dir, "-workers", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"primary.json.gz", "baseline.json.gz"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("expected %s: %v", name, err)
		}
	}
	got := out.String()
	if !strings.Contains(got, "primary:") || !strings.Contains(got, "baseline:") {
		t.Errorf("report missing dataset lines:\n%s", got)
	}
}

func TestRunSingleDatasetUncompressed(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-scale", "0.02", "-out", dir, "-dataset", "primary", "-gz=false"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "primary.json")); err != nil {
		t.Errorf("expected primary.json: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "baseline.json")); err == nil {
		t.Error("baseline.json written despite -dataset primary")
	}
}

func TestRunRejectsUnknownDataset(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-dataset", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error for unknown -dataset")
	}
}

func TestRunBinaryFormat(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-scale", "0.02", "-seed", "7", "-out", dir, "-dataset", "primary", "-format", "binary"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "primary.bin.gz")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("expected primary.bin.gz: %v", err)
	}
	format, err := trace.DetectFormat(path)
	if err != nil {
		t.Fatal(err)
	}
	if format != trace.FormatBinary {
		t.Fatalf("detected %v, want binary", format)
	}
	// The binary file decodes to the same dataset the JSON path writes
	// (modulo E7 coordinate quantization, checked via user/checkin
	// counts).
	fromBin, err := trace.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	jsonDir := t.TempDir()
	if err := run([]string{"-scale", "0.02", "-seed", "7", "-out", jsonDir, "-dataset", "primary"}, &out); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := trace.LoadFile(filepath.Join(jsonDir, "primary.json.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fromBin.Users) != len(fromJSON.Users) {
		t.Fatalf("binary has %d users, JSON %d", len(fromBin.Users), len(fromJSON.Users))
	}
	for i, u := range fromBin.Users {
		if len(u.Checkins) != len(fromJSON.Users[i].Checkins) || len(u.GPS) != len(fromJSON.Users[i].GPS) {
			t.Fatalf("user %d traces differ between formats", i)
		}
	}
	// Binary output is the smaller encoding even under gzip.
	binInfo, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	jsonInfo, err := os.Stat(filepath.Join(jsonDir, "primary.json.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if binInfo.Size() >= jsonInfo.Size() {
		t.Errorf("binary file %d bytes, JSON %d bytes", binInfo.Size(), jsonInfo.Size())
	}
}

func TestRunRejectsUnknownFormat(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-format", "xml"}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error for unknown -format")
	}
}

func TestRunShardedCorpus(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-scale", "0.02", "-seed", "7", "-out", dir,
		"-dataset", "primary", "-format", "binary", "-shards", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "primary"+trace.ManifestSuffix)
	ss, err := trace.OpenShardSet(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Manifest.Shards) != 3 {
		t.Fatalf("manifest lists %d shards, want 3", len(ss.Manifest.Shards))
	}
	for _, info := range ss.Manifest.Shards {
		if !strings.HasSuffix(info.File, ".bin.gz") { // -gz defaults on
			t.Errorf("shard file %q not gzip binary", info.File)
		}
		if _, err := os.Stat(filepath.Join(dir, info.File)); err != nil {
			t.Errorf("shard file missing: %v", err)
		}
	}
	if !strings.Contains(out.String(), "3 shards") || !strings.Contains(out.String(), manifest) {
		t.Errorf("report does not mention the shard set:\n%s", out.String())
	}
	// The sharded corpus holds the same users as the single-file output
	// of the same seed.
	single := t.TempDir()
	if err := run([]string{"-scale", "0.02", "-seed", "7", "-out", single,
		"-dataset", "primary", "-format", "binary"}, &out); err != nil {
		t.Fatal(err)
	}
	ds, err := trace.LoadFile(filepath.Join(single, "primary.bin.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if ss.Manifest.Users != len(ds.Users) {
		t.Errorf("shard set has %d users, single file %d", ss.Manifest.Users, len(ds.Users))
	}
}

func TestRunShardsRequireBinaryFormat(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-shards", "2"}, &bytes.Buffer{}); err == nil {
		t.Fatal("sharded JSON output accepted")
	}
	if err := run([]string{"-out", t.TempDir(), "-format", "binary", "-shards", "-1"}, &bytes.Buffer{}); err == nil {
		t.Fatal("negative shard count accepted")
	}
}
