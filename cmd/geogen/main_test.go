package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGeneratesBothDatasets(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-scale", "0.02", "-seed", "7", "-out", dir, "-workers", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"primary.json.gz", "baseline.json.gz"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("expected %s: %v", name, err)
		}
	}
	got := out.String()
	if !strings.Contains(got, "primary:") || !strings.Contains(got, "baseline:") {
		t.Errorf("report missing dataset lines:\n%s", got)
	}
}

func TestRunSingleDatasetUncompressed(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-scale", "0.02", "-out", dir, "-dataset", "primary", "-gz=false"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "primary.json")); err != nil {
		t.Errorf("expected primary.json: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "baseline.json")); err == nil {
		t.Error("baseline.json written despite -dataset primary")
	}
}

func TestRunRejectsUnknownDataset(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-dataset", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error for unknown -dataset")
	}
}
