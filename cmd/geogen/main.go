// Command geogen generates the synthetic study datasets (Primary and
// Baseline) and writes them as JSON (optionally gzip-compressed).
//
// Usage:
//
//	geogen -scale 0.25 -seed 42 -out ./data
//
// produces ./data/primary.json.gz and ./data/baseline.json.gz.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"geosocial/internal/rng"
	"geosocial/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("geogen: ")
	var (
		scale   = flag.Float64("scale", 1.0, "population scale relative to the paper's 244+47 users")
		seed    = flag.Uint64("seed", 42, "root RNG seed")
		outDir  = flag.String("out", ".", "output directory")
		gz      = flag.Bool("gz", true, "gzip-compress the output")
		dataset = flag.String("dataset", "both", "which dataset to generate: primary, baseline or both")
	)
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	root := rng.New(*seed)
	ext := ".json"
	if *gz {
		ext = ".json.gz"
	}
	gen := func(cfg synth.Config) error {
		ds, err := synth.Generate(cfg.Scale(*scale), root.Split(cfg.Name))
		if err != nil {
			return err
		}
		path := filepath.Join(*outDir, cfg.Name+ext)
		if err := ds.SaveFile(path); err != nil {
			return err
		}
		sum := ds.Summarize(nil)
		fmt.Printf("%s: %d users, %d checkins, %d GPS points -> %s\n",
			cfg.Name, sum.Users, sum.Checkins, sum.GPSPoints, path)
		return nil
	}
	switch *dataset {
	case "primary":
		if err := gen(synth.PrimaryConfig()); err != nil {
			log.Fatal(err)
		}
	case "baseline":
		if err := gen(synth.BaselineConfig()); err != nil {
			log.Fatal(err)
		}
	case "both":
		if err := gen(synth.PrimaryConfig()); err != nil {
			log.Fatal(err)
		}
		if err := gen(synth.BaselineConfig()); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -dataset %q (primary, baseline or both)", *dataset)
	}
}
