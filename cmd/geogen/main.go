// Command geogen generates the synthetic study datasets (Primary and
// Baseline) and writes them as JSON or binary (optionally
// gzip-compressed).
//
// Usage:
//
//	geogen -scale 0.25 -seed 42 -out ./data
//	geogen -scale 1.0 -workers 8 -out ./data          # generate users on 8 workers
//	geogen -scale 1.0 -format binary -out ./data      # compact streaming format
//	geogen -format binary -shards 8 -out ./data       # sharded corpus + manifest
//
// produces ./data/primary.json.gz and ./data/baseline.json.gz (or
// .bin.gz with -format binary; binary files are smaller, decode faster
// and can be validated by geovalidate in bounded memory). With
// -shards N each dataset becomes N size-balanced binary shard files
// plus a "<name>.manifest.json" that geovalidate reads to validate the
// shards concurrently. The -workers flag controls per-user generation
// parallelism (0 = all cores); output is byte-identical for any worker
// or shard count.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"geosocial/internal/obs"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

// errUsage signals a flag-parse failure the flag package has already
// reported to stderr; main exits 2 without printing it again.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("geogen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run executes the tool against args, writing its report to stdout. It is
// the whole tool minus process concerns, so tests can drive it directly.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("geogen", flag.ContinueOnError)
	ver := obs.RegisterVersionFlag(fs)
	var (
		scale   = fs.Float64("scale", 1.0, "population scale relative to the paper's 244+47 users")
		seed    = fs.Uint64("seed", 42, "root RNG seed")
		outDir  = fs.String("out", ".", "output directory")
		gz      = fs.Bool("gz", true, "gzip-compress the output")
		format  = fs.String("format", "json", "dataset encoding: json or binary")
		dataset = fs.String("dataset", "both", "which dataset to generate: primary, baseline or both")
		workers = fs.Int("workers", 0, "user-generation workers (0 = all cores, 1 = serial; output is identical)")
		shards  = fs.Int("shards", 0, "split each dataset into N binary shard files plus a manifest (requires -format binary)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if obs.PrintVersionIf(*ver, stdout, "geogen") {
		return nil
	}
	var ext string
	switch *format {
	case "json":
		ext = trace.FormatJSON.Ext()
	case "binary":
		ext = trace.FormatBinary.Ext()
	default:
		return fmt.Errorf("unknown -format %q (json or binary)", *format)
	}
	if *gz {
		ext += ".gz"
	}
	if *shards < 0 {
		return fmt.Errorf("negative -shards %d", *shards)
	}
	if *shards > 0 && *format != "binary" {
		return fmt.Errorf("-shards writes binary shard files; pass -format binary")
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	root := rng.New(*seed)
	gen := func(cfg synth.Config) error {
		cfg.Parallelism = *workers
		ds, err := synth.Generate(cfg.Scale(*scale), root.Split(cfg.Name))
		if err != nil {
			return err
		}
		sum := ds.Summarize(nil)
		if *shards > 0 {
			manifest, err := ds.SaveShards(*outDir, trace.ShardOptions{Shards: *shards, Compress: *gz})
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s: %d users, %d checkins, %d GPS points -> %d shards, %s\n",
				cfg.Name, sum.Users, sum.Checkins, sum.GPSPoints, *shards, manifest)
			return nil
		}
		path := filepath.Join(*outDir, cfg.Name+ext)
		if err := ds.SaveFile(path); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: %d users, %d checkins, %d GPS points -> %s\n",
			cfg.Name, sum.Users, sum.Checkins, sum.GPSPoints, path)
		return nil
	}
	switch *dataset {
	case "primary":
		return gen(synth.PrimaryConfig())
	case "baseline":
		return gen(synth.BaselineConfig())
	case "both":
		if err := gen(synth.PrimaryConfig()); err != nil {
			return err
		}
		return gen(synth.BaselineConfig())
	default:
		return fmt.Errorf("unknown -dataset %q (primary, baseline or both)", *dataset)
	}
}
