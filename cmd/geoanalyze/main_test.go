package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"geosocial"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
)

// genLog validates a tiny dataset with an outcome sink and returns the
// log path.
func genLog(t *testing.T) string {
	t.Helper()
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.05), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	binPath := filepath.Join(dir, "primary.bin.gz")
	if err := ds.SaveFile(binPath); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "primary.gso")
	if _, err := geosocial.ValidateFileOpts(binPath, geosocial.StreamOptions{OutcomeLog: logPath}); err != nil {
		t.Fatal(err)
	}
	return logPath
}

func TestRunAllKinds(t *testing.T) {
	logPath := genLog(t)
	wants := map[string][]string{
		"summary":      {"partition:", "checkin taxonomy:", "matcher vs ground truth"},
		"correlations": {"feature correlations", "#Friends", "superfluous"},
		"detector":     {"learned detector", "burstiness baseline", "precision"},
		"levy":         {"Levy-walk model fits", "gps", "honest-checkin", "all-checkin"},
		"tradeoff":     {"user-filtering trade-off", "users dropped", ">= 80%"},
	}
	if len(wants) != len(geosocial.AnalysisKinds()) {
		t.Fatalf("test covers %d kinds, facade offers %d", len(wants), len(geosocial.AnalysisKinds()))
	}
	for kind, markers := range wants {
		t.Run(kind, func(t *testing.T) {
			var out bytes.Buffer
			if err := run([]string{kind, "-in", logPath}, &out); err != nil {
				t.Fatal(err)
			}
			got := out.String()
			if !strings.Contains(got, `dataset "primary"`) {
				t.Errorf("report missing dataset header:\n%s", got)
			}
			for _, want := range markers {
				if !strings.Contains(got, want) {
					t.Errorf("%s report missing %q:\n%s", kind, want, got)
				}
			}
		})
	}
}

func TestRunJSONOutput(t *testing.T) {
	logPath := genLog(t)
	var out bytes.Buffer
	if err := run([]string{"levy", "-in", logPath, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc["kind"] != "levy" || doc["dataset"] != "primary" {
		t.Errorf("JSON header fields: kind=%v dataset=%v", doc["kind"], doc["dataset"])
	}
	levy, ok := doc["levy"].(map[string]any)
	if !ok {
		t.Fatalf("JSON missing levy report: %v", doc)
	}
	for _, model := range []string{"gps", "honest_checkin", "all_checkin"} {
		if _, ok := levy[model]; !ok {
			t.Errorf("levy report missing model %q", model)
		}
	}
}

func TestRunRejectsBadInvocation(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error without a kind")
	}
	if err := run([]string{"-in", "x.gso"}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error when the kind is missing before flags")
	}
	if err := run([]string{"summary"}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error when -in is missing")
	}
	logPath := genLog(t)
	if err := run([]string{"nonsense", "-in", logPath}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "unknown analysis kind") {
		t.Fatalf("unknown kind error = %v", err)
	}
}
