package main

import (
	"bytes"
	"testing"

	"geosocial/internal/obs"
)

// TestVersionFlag covers both spellings: -version in the kind position
// (the one place a flag is allowed before the kind) and after a kind.
func TestVersionFlag(t *testing.T) {
	want := obs.VersionString("geoanalyze") + "\n"
	for _, args := range [][]string{
		{"-version"},
		{"--version"},
		{"summary", "-version"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if out.String() != want {
			t.Fatalf("%v: stdout = %q, want %q", args, out.String(), want)
		}
	}
}
