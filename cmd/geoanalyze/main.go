// Command geoanalyze runs the §5–§7 analyses over a GSO1 outcome log
// written by geovalidate -outcomes (or the geoserve service): Table 2
// feature correlations, the extraneous-checkin detectors, the §5.3
// user-filtering trade-off, and the §6.1 Levy mobility fits — all
// streamed from the log, without revalidating or holding per-user
// outcomes in memory.
//
// Usage:
//
//	geoanalyze summary      -in out.gso         # partition, taxonomy, truth
//	geoanalyze correlations -in out.gso         # Table 2
//	geoanalyze detector     -in out.gso -folds 5 -threshold 0.5 -gap 2m
//	geoanalyze levy         -in out.gso         # §6.1 model parameters
//	geoanalyze tradeoff     -in out.gso         # §5.3 filtering dilemma
//	geoanalyze levy         -in out.gso -json   # machine-readable report
//
// Results are exactly equal to running the same analysis on in-memory
// outcomes of the same dataset: the log stores exact float bits in
// canonical user order, and both paths share one implementation per
// analysis.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"geosocial"
	"geosocial/internal/classify"
	"geosocial/internal/core"
	"geosocial/internal/obs"
)

// errUsage signals a flag-parse failure the flag package has already
// reported to stderr; main exits 2 without printing it again.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("geoanalyze: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run executes the tool against args, writing its report to stdout. It
// is the whole tool minus process concerns, so tests can drive it
// directly.
func run(args []string, stdout io.Writer) error {
	kinds := strings.Join(geosocial.AnalysisKinds(), "|")
	if len(args) == 0 {
		return fmt.Errorf("missing analysis kind: geoanalyze %s -in out.gso", kinds)
	}
	kind := args[0]
	if kind == "-version" || kind == "--version" {
		// The version request is the one flag allowed before the kind.
		fmt.Fprintln(stdout, obs.VersionString("geoanalyze"))
		return nil
	}
	if strings.HasPrefix(kind, "-") {
		return fmt.Errorf("the analysis kind comes first: geoanalyze %s -in out.gso", kinds)
	}

	fs := flag.NewFlagSet("geoanalyze "+kind, flag.ContinueOnError)
	ver := obs.RegisterVersionFlag(fs)
	var (
		in        = fs.String("in", "", "outcome log written by geovalidate -outcomes")
		asJSON    = fs.Bool("json", false, "emit the analysis report as JSON instead of text")
		folds     = fs.Int("folds", 5, "detector cross-validation folds")
		threshold = fs.Float64("threshold", 0.5, "detector decision threshold")
		gap       = fs.Duration("gap", 2*time.Minute, "burstiness detector gap threshold")
	)
	if err := fs.Parse(args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if obs.PrintVersionIf(*ver, stdout, "geoanalyze") {
		return nil
	}
	if *in == "" {
		return fmt.Errorf("missing -in outcome log (write one with geovalidate -outcomes)")
	}
	// A non-positive threshold would be silently replaced by the
	// default (the zero value means "unset" in AnalyzeOptions), so
	// reject it loudly; scores are strictly inside (0, 1) anyway.
	if kind == geosocial.AnalysisDetector && (*threshold <= 0 || *threshold >= 1) {
		return fmt.Errorf("-threshold must be in (0, 1), got %g", *threshold)
	}

	a, err := geosocial.AnalyzeOutcomesOpts(*in, kind, geosocial.AnalyzeOptions{
		Folds:     *folds,
		Threshold: *threshold,
		BurstGap:  *gap,
	})
	if err != nil {
		return err
	}
	if *asJSON {
		// The shared presentation encoding keeps this output
		// byte-comparable with the geoserve analysis endpoints.
		return core.WriteIndentedJSON(stdout, a)
	}
	return render(stdout, a)
}

// render writes the human-readable report for one analysis.
func render(w io.Writer, a *geosocial.OutcomeAnalysis) error {
	fmt.Fprintf(w, "dataset %q: %d users, %d checkins (%s)\n", a.Dataset, a.Users, a.Checkins, a.Kind)
	switch {
	case a.Summary != nil:
		sm := a.Summary
		fmt.Fprintf(w, "partition: %v\n", sm.Partition)
		fmt.Fprintln(w, "checkin taxonomy:")
		for _, k := range []classify.Kind{classify.Honest, classify.Superfluous, classify.Remote, classify.Driveby, classify.Other} {
			fmt.Fprintf(w, "  %-12s %6d\n", k, sm.Taxonomy[k.String()])
		}
		if sm.Truth != nil {
			fmt.Fprintf(w, "matcher vs ground truth: accuracy %.3f, honest precision %.3f, recall %.3f\n",
				sm.Truth.Accuracy, sm.Truth.HonestP, sm.Truth.HonestR)
		}

	case a.Correlations != nil:
		c := a.Correlations
		fmt.Fprintf(w, "feature correlations (Table 2, %d users):\n", c.Users)
		fmt.Fprintf(w, "  %-12s", "")
		for _, f := range c.Features {
			fmt.Fprintf(w, " %13s", f)
		}
		fmt.Fprintln(w)
		names := make([]string, 0, len(c.Rows))
		for name := range c.Rows {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "  %-12s", name)
			for _, v := range c.Rows[name] {
				fmt.Fprintf(w, " %13.3f", v)
			}
			fmt.Fprintln(w)
		}

	case a.Detector != nil:
		d := a.Detector
		fmt.Fprintf(w, "learned detector (%d-fold CV over %d examples, threshold %.2f):\n",
			d.Folds, d.Examples, d.Threshold)
		fmt.Fprintf(w, "  precision %.3f recall %.3f F1 %.3f accuracy %.3f (tp=%d fp=%d tn=%d fn=%d)\n",
			d.Precision, d.Recall, d.F1, d.Accuracy, d.TP, d.FP, d.TN, d.FN)
		fmt.Fprintf(w, "burstiness baseline (gap %.0fs): precision %.3f recall %.3f F1 %.3f\n",
			d.Burst.GapSeconds, d.Burst.Precision, d.Burst.Recall, d.Burst.F1)

	case a.Levy != nil:
		fmt.Fprintln(w, "Levy-walk model fits (§6.1):")
		for _, m := range []struct {
			name string
			r    geosocial.LevyModelReport
		}{
			{"gps", a.Levy.GPS},
			{"honest-checkin", a.Levy.Honest},
			{"all-checkin", a.Levy.All},
		} {
			fmt.Fprintf(w, "  %-15s flights=%d pareto(xm=%.3fkm alpha=%.2f max=%.1fkm) t=%.2f*d^%.2f pause(xm=%.0fmin alpha=%.2f)\n",
				m.name, m.r.Flights, m.r.FlightXmKm, m.r.FlightAlpha, m.r.FlightMaxKm,
				m.r.MoveTimeK, m.r.MoveTimeExp, m.r.PauseXmMin, m.r.PauseAlpha)
		}

	case a.Tradeoff != nil:
		t := a.Tradeoff
		fmt.Fprintf(w, "user-filtering trade-off (§5.3, %d users with checkins):\n", t.CurveUsers)
		fmt.Fprintf(w, "  %-22s %-15s %s\n", "extraneous removed", "users dropped", "honest lost")
		for _, tg := range t.Targets {
			fmt.Fprintf(w, "  %-22s %-15d %.0f%%\n",
				fmt.Sprintf(">= %.0f%%", 100*tg.TargetExtraneous), tg.UsersDropped, 100*tg.HonestLost)
		}
	}
	return nil
}
