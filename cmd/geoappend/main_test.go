package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"geosocial"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
)

// genBinary writes a tiny binary dataset (on the codec's E7 coordinate
// grid, so split/recombine comparisons are exact) and returns its path.
func genBinary(t *testing.T) string {
	t.Helper()
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "primary.bin.gz")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSplitApplyRoundTrip is the tool's core contract: cutting a corpus
// into base + delta and appending the delta back reproduces the
// original corpus's validation exactly.
func TestSplitApplyRoundTrip(t *testing.T) {
	src := genBinary(t)
	out := filepath.Join(t.TempDir(), "corpus")

	var buf bytes.Buffer
	if err := run([]string{"-split", src, "-out", out, "-shards", "2", "-cut-days", "3"}, &buf, io.Discard); err != nil {
		t.Fatalf("split: %v", err)
	}
	if !strings.Contains(buf.String(), "delta users") {
		t.Fatalf("split report: %q", buf.String())
	}
	manifest := filepath.Join(out, "primary.manifest.json")
	delta := filepath.Join(out, "delta.gsb")
	for _, p := range []string{manifest, delta} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("split output missing: %v", err)
		}
	}

	base, err := geosocial.ValidateFileOpts(manifest, geosocial.StreamOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	buf.Reset()
	if err := run([]string{"-in", manifest, "-delta", delta}, &buf, io.Discard); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !strings.Contains(buf.String(), "generation 1") {
		t.Fatalf("apply report: %q", buf.String())
	}

	full, err := geosocial.ValidateFileOpts(src, geosocial.StreamOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := geosocial.ValidateFileOpts(manifest, geosocial.StreamOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if grown.Users != full.Users {
		t.Fatalf("users: grown=%d full=%d", grown.Users, full.Users)
	}
	if base.Partition.Checkins >= full.Partition.Checkins {
		t.Fatalf("cut removed nothing: base has %d checkins, full %d",
			base.Partition.Checkins, full.Partition.Checkins)
	}
	if grown.Partition != full.Partition {
		t.Errorf("partition: grown=%+v full=%+v", grown.Partition, full.Partition)
	}
	if !reflect.DeepEqual(grown.Taxonomy, full.Taxonomy) {
		t.Errorf("taxonomy: grown=%v full=%v", grown.Taxonomy, full.Taxonomy)
	}
	if !reflect.DeepEqual(grown.Truth, full.Truth) {
		t.Errorf("truth: grown=%+v full=%+v", grown.Truth, full.Truth)
	}
}

// TestSplitRefusesDegenerateCut: a cut before the whole corpus would
// leave an empty base; the tool must refuse rather than write one.
func TestSplitRefusesDegenerateCut(t *testing.T) {
	src := genBinary(t)
	out := t.TempDir()
	err := run([]string{"-split", src, "-out", out, "-cut-days", "100000"}, &bytes.Buffer{}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "base users") {
		t.Fatalf("degenerate cut: %v", err)
	}
	if _, statErr := os.Stat(filepath.Join(out, "primary.manifest.json")); statErr == nil {
		t.Fatal("degenerate cut wrote a manifest")
	}
}

// TestFlagValidation pins the mode selection errors.
func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{nil, "one of -split or -in"},
		{[]string{"-split", "a", "-in", "b"}, "mutually exclusive"},
		{[]string{"-split", "a"}, "requires -out"},
		{[]string{"-in", "a"}, "requires -delta"},
	} {
		err := run(tc.args, &bytes.Buffer{}, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want %q", tc.args, err, tc.want)
		}
	}
}
