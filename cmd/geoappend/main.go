// Command geoappend drives the append-only ingest container: it cuts a
// saved dataset into a base shard set plus a delta stream (split mode)
// and grows a shard set by appending a delta stream to it as one new
// generation (apply mode). Together with geovalidate -update-from it
// exercises the full live-ingest loop offline: split a corpus, validate
// the base, apply the delta, update incrementally, and compare against
// a cold validation of the grown set — the results are byte-identical.
//
// Usage:
//
//	geoappend -split primary.bin.gz -out ./corpus            # base shards + delta
//	geoappend -split primary.bin.gz -out ./corpus -shards 4 -cut-days 2
//	geoappend -in ./corpus/primary.manifest.json -delta ./corpus/delta.gsb
//
// Split mode cuts every user's traces at a single point in time —
// -cut-days days before the corpus's last activity — and writes the
// earlier parts as a -shards shard set under -out and the later parts
// as a GSB1 delta stream (-delta, default "<out>/delta.gsb"). A user
// whose activity lies entirely after the cut is withheld from the base
// and arrives brand-new in the delta, so the stream exercises both the
// grown-user and the new-user append paths.
//
// Apply mode (-in with -delta) appends the delta stream onto the shard
// set's manifest as one new generation: the delta users land in a new
// shard file, the manifest records its generation and checksum, and
// nothing already on disk is rewritten. The same wire format drives
// the service's POST /v1/datasets/{id}/append endpoint.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"

	"geosocial/internal/obs"
	"geosocial/internal/trace"
)

// errUsage signals a flag-parse failure the flag package has already
// reported to stderr; main exits 2 without printing it again.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("geoappend: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run executes the tool against args, writing its report to stdout and
// log lines (gated by -log-level / -quiet) to stderr. It is the whole
// tool minus process concerns, so tests can drive it directly.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("geoappend", flag.ContinueOnError)
	obsFlags := obs.RegisterCLIFlags(fs, "geoappend")
	var (
		split   = fs.String("split", "", "dataset to cut into a base shard set plus a delta stream")
		out     = fs.String("out", "", "output directory for the split shard set (required with -split)")
		shards  = fs.Int("shards", 2, "shard count for the split base set")
		cutDays = fs.Float64("cut-days", 1, "cut point: this many days before the corpus's last activity")
		delta   = fs.String("delta", "", "delta stream path: written by -split (default <out>/delta.gsb), appended by -in")
		in      = fs.String("in", "", "shard-set manifest (or its directory) to append -delta onto")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if obsFlags.PrintVersion(stdout) {
		return nil
	}
	logger, err := obsFlags.Logger(stderr)
	if err != nil {
		return err
	}
	switch {
	case *split != "" && *in != "":
		return fmt.Errorf("-split and -in are mutually exclusive")
	case *split != "":
		if *out == "" {
			return fmt.Errorf("-split requires -out (directory for the base shard set)")
		}
		path := *delta
		if path == "" {
			path = filepath.Join(*out, "delta.gsb")
		}
		logger.Debugf("split mode: src=%s out=%s shards=%d cut-days=%v", *split, *out, *shards, *cutDays)
		return runSplit(*split, *out, path, *shards, *cutDays, stdout)
	case *in != "":
		if *delta == "" {
			return fmt.Errorf("-in requires -delta (the stream to append)")
		}
		logger.Debugf("apply mode: manifest=%s delta=%s", *in, *delta)
		return runApply(*in, *delta, stdout)
	default:
		return fmt.Errorf("one of -split or -in is required")
	}
}

// runSplit cuts the dataset at cutDays before its last activity and
// writes the base shard set plus the delta stream.
func runSplit(src, outDir, deltaPath string, shards int, cutDays float64, stdout io.Writer) error {
	full, err := trace.LoadFile(src)
	if err != nil {
		return err
	}
	maxT := int64(math.MinInt64)
	for _, u := range full.Users {
		if n := len(u.GPS); n > 0 && u.GPS[n-1].T > maxT {
			maxT = u.GPS[n-1].T
		}
		if n := len(u.Checkins); n > 0 && u.Checkins[n-1].T > maxT {
			maxT = u.Checkins[n-1].T
		}
	}
	if maxT == math.MinInt64 {
		return fmt.Errorf("split %s: corpus has no activity to cut", src)
	}
	cutT := maxT - int64(cutDays*86400)

	base := &trace.Dataset{Name: full.Name, POIs: full.POIs}
	var deltas []*trace.User
	for _, u := range full.Users {
		before, after := cutUserAt(u, cutT)
		if before != nil {
			base.Users = append(base.Users, before)
		}
		if after != nil {
			deltas = append(deltas, after)
		}
	}
	if len(base.Users) == 0 || len(deltas) == 0 {
		return fmt.Errorf("split %s: cut %v days leaves %d base users and %d delta users; pick a cut inside the corpus timeline",
			src, cutDays, len(base.Users), len(deltas))
	}
	if err := os.MkdirAll(outDir, 0o777); err != nil {
		return err
	}
	manifest, err := base.SaveShards(outDir, trace.ShardOptions{Shards: shards})
	if err != nil {
		return err
	}
	f, err := os.Create(deltaPath)
	if err != nil {
		return err
	}
	sw, err := trace.NewStreamWriter(f, full.Name, full.POIs)
	if err != nil {
		f.Close()
		return err
	}
	for _, u := range deltas {
		if err := sw.WriteUser(u); err != nil {
			f.Close()
			return err
		}
	}
	if err := sw.Close(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "split %q: %d base users in %d shards (%s), %d delta users (%s)\n",
		full.Name, len(base.Users), shards, manifest, len(deltas), deltaPath)
	return nil
}

// runApply appends the delta stream onto the shard set as one new
// generation.
func runApply(manifest, deltaPath string, stdout io.Writer) error {
	f, err := os.Open(deltaPath)
	if err != nil {
		return err
	}
	defer f.Close()
	aw, err := trace.OpenAppend(manifest)
	if err != nil {
		return err
	}
	gen := aw.Generation()
	if err := aw.AppendStream(f); err != nil {
		return err
	}
	if err := aw.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "appended %s as generation %d of %q (%s)\n",
		deltaPath, gen, aw.Name(), aw.ManifestPath())
	return nil
}

// cutUserAt splits one user's traces at cutT: everything strictly
// before stays in the first part, the rest becomes the second. A user
// with no activity at or after cutT is untouched (nil second part); one
// with nothing before has a nil first part.
func cutUserAt(u *trace.User, cutT int64) (before, after *trace.User) {
	gi := sort.Search(len(u.GPS), func(i int) bool { return u.GPS[i].T >= cutT })
	ci := sort.Search(len(u.Checkins), func(i int) bool { return u.Checkins[i].T >= cutT })
	if gi == len(u.GPS) && ci == len(u.Checkins) {
		return u, nil
	}
	if gi == 0 && ci == 0 {
		return nil, u
	}
	before = &trace.User{ID: u.ID, Profile: u.Profile, Days: u.Days, GPS: u.GPS[:gi], Checkins: u.Checkins[:ci]}
	after = &trace.User{ID: u.ID, Profile: u.Profile, Days: u.Days, GPS: u.GPS[gi:], Checkins: u.Checkins[ci:]}
	return before, after
}
