package main

import (
	"bytes"
	"strings"
	"testing"

	"geosocial/internal/obs"
)

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-version"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	want := obs.VersionString("geoappend") + "\n"
	if out.String() != want {
		t.Fatalf("stdout = %q, want %q", out.String(), want)
	}
	if errb.Len() != 0 {
		t.Fatalf("-version wrote to stderr: %q", errb.String())
	}
}

func TestBadLogLevelRejected(t *testing.T) {
	err := run([]string{"-log-level", "loud", "-in", "x", "-delta", "y"}, &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-log-level") {
		t.Fatalf("err = %v, want -log-level validation error", err)
	}
}
