// Command metriclint checks a Prometheus text-exposition payload for
// the structural rules a scraper relies on: name and label grammar,
// HELP/TYPE presence and family contiguity, duplicate samples, and
// histogram bucket invariants (cumulative le buckets ending in +Inf
// that equal the family's _count). It shares its checker with the
// serve-package tests (internal/obs.LintExposition), so the format the
// service emits and the format CI accepts can never drift apart.
//
// Usage:
//
//	geoserve ... &
//	curl -s localhost:8080/metrics | metriclint          # lint stdin
//	metriclint scrape.txt other.txt                      # lint files
//	metriclint -url http://localhost:8080/metrics        # scrape + lint
//	metriclint -require geoserve_uploads_total -url ...  # + presence check
//
// Exit status 0 when every input is clean, 1 when any violation is
// found (one line per violation on stderr), 2 on usage errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"geosocial/internal/obs"
)

// errUsage signals a flag-parse failure the flag package has already
// reported to stderr; main exits 2 without printing it again.
var errUsage = errors.New("usage")

// errViolations reports lint failures already printed to stderr; main
// exits 1 without printing it again.
var errViolations = errors.New("violations")

func main() {
	log.SetFlags(0)
	log.SetPrefix("metriclint: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		switch {
		case errors.Is(err, errUsage):
			os.Exit(2)
		case errors.Is(err, errViolations):
			os.Exit(1)
		}
		log.Fatal(err)
	}
}

// run lints every input — files named in args, -url scrapes, or stdin
// when neither is given — and reports the first-class outcome on
// stdout, violations on stderr.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("metriclint", flag.ContinueOnError)
	ver := obs.RegisterVersionFlag(fs)
	url := fs.String("url", "", "scrape this /metrics endpoint instead of reading files or stdin")
	timeout := fs.Duration("timeout", 10*time.Second, "HTTP timeout for -url scrapes")
	require := fs.String("require", "", "comma-separated metric names that must be present in every input")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if obs.PrintVersionIf(*ver, stdout, "metriclint") {
		return nil
	}
	var required []string
	if *require != "" {
		required = strings.Split(*require, ",")
	}

	type input struct {
		name    string
		payload []byte
	}
	var inputs []input
	switch {
	case *url != "":
		if fs.NArg() > 0 {
			return fmt.Errorf("-url and file arguments are mutually exclusive")
		}
		client := &http.Client{Timeout: *timeout}
		resp, err := client.Get(*url)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("read %s: %w", *url, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("scrape %s: %s", *url, resp.Status)
		}
		inputs = append(inputs, input{*url, body})
	case fs.NArg() > 0:
		for _, path := range fs.Args() {
			payload, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			inputs = append(inputs, input{path, payload})
		}
	default:
		payload, err := io.ReadAll(stdin)
		if err != nil {
			return fmt.Errorf("read stdin: %w", err)
		}
		inputs = append(inputs, input{"<stdin>", payload})
	}

	failed := false
	for _, in := range inputs {
		violations := obs.LintExposition(in.payload)
		for _, name := range required {
			if !hasMetric(in.payload, strings.TrimSpace(name)) {
				violations = append(violations, fmt.Errorf("required metric %q not present", strings.TrimSpace(name)))
			}
		}
		if len(violations) > 0 {
			failed = true
			for _, v := range violations {
				fmt.Fprintf(stderr, "%s: %v\n", in.name, v)
			}
			continue
		}
		fmt.Fprintf(stdout, "%s: clean (%d samples)\n", in.name, countSamples(in.payload))
	}
	if failed {
		return errViolations
	}
	return nil
}

// hasMetric reports whether any sample line in the payload carries the
// metric name — exactly, or as a histogram series of it (_bucket, _sum,
// _count), or with a label set.
func hasMetric(payload []byte, name string) bool {
	if name == "" {
		return false
	}
	for _, line := range strings.Split(string(payload), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sample := line
		if i := strings.IndexAny(sample, "{ "); i >= 0 {
			sample = sample[:i]
		}
		switch sample {
		case name, name + "_bucket", name + "_sum", name + "_count":
			return true
		}
	}
	return false
}

// countSamples counts the non-comment, non-blank lines.
func countSamples(payload []byte) int {
	n := 0
	for _, line := range strings.Split(string(payload), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			n++
		}
	}
	return n
}
