package main

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geosocial/internal/obs"
)

const cleanPayload = `# HELP demo_total A counter.
# TYPE demo_total counter
demo_total 3
# HELP demo_seconds A histogram.
# TYPE demo_seconds histogram
demo_seconds_bucket{le="0.1"} 1
demo_seconds_bucket{le="+Inf"} 2
demo_seconds_sum 0.5
demo_seconds_count 2
`

const dirtyPayload = `demo_total 3
`

func TestLintStdin(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, strings.NewReader(cleanPayload), &out, &errb); err != nil {
		t.Fatalf("clean payload: %v\n%s", err, errb.String())
	}
	if !strings.Contains(out.String(), "<stdin>: clean") {
		t.Fatalf("stdout = %q", out.String())
	}

	out.Reset()
	errb.Reset()
	err := run(nil, strings.NewReader(dirtyPayload), &out, &errb)
	if !errors.Is(err, errViolations) {
		t.Fatalf("dirty payload: err = %v, want errViolations", err)
	}
	if errb.Len() == 0 {
		t.Fatal("no violations printed to stderr")
	}
}

func TestLintFiles(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.txt")
	dirty := filepath.Join(dir, "dirty.txt")
	if err := os.WriteFile(clean, []byte(cleanPayload), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dirty, []byte(dirtyPayload), 0o666); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{clean}, nil, &out, &errb); err != nil {
		t.Fatalf("clean file: %v\n%s", err, errb.String())
	}
	err := run([]string{clean, dirty}, nil, &out, &errb)
	if !errors.Is(err, errViolations) {
		t.Fatalf("mixed files: err = %v, want errViolations", err)
	}
	if !strings.Contains(errb.String(), "dirty.txt") {
		t.Fatalf("violation not attributed to the dirty file: %q", errb.String())
	}
}

func TestScrapeURL(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(cleanPayload))
	}))
	defer ts.Close()
	var out, errb bytes.Buffer
	if err := run([]string{"-url", ts.URL}, nil, &out, &errb); err != nil {
		t.Fatalf("scrape: %v\n%s", err, errb.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestRequiredMetrics(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-require", "demo_total,demo_seconds"}, strings.NewReader(cleanPayload), &out, &errb); err != nil {
		t.Fatalf("present metrics: %v\n%s", err, errb.String())
	}
	err := run([]string{"-require", "absent_total"}, strings.NewReader(cleanPayload), &out, &errb)
	if !errors.Is(err, errViolations) {
		t.Fatalf("absent metric: err = %v, want errViolations", err)
	}
	if !strings.Contains(errb.String(), "absent_total") {
		t.Fatalf("missing-metric violation not named: %q", errb.String())
	}
}

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, nil, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if want := obs.VersionString("metriclint") + "\n"; out.String() != want {
		t.Fatalf("stdout = %q, want %q", out.String(), want)
	}
}
