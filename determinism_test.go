package geosocial

import (
	"fmt"
	"reflect"
	"testing"
)

// TestStudyDeterministicAcrossWorkers asserts the end-to-end contract of
// the parallel pipeline: generation, validation and classification produce
// byte-identical results at Parallelism 1 (the exact legacy serial path)
// and Parallelism 8, for multiple seeds and scales.
func TestStudyDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		seed  uint64
		scale float64
	}{
		{7, 0.03},
		{42, 0.03},
		{1001, 0.05},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("seed=%d/scale=%g", c.seed, c.scale), func(t *testing.T) {
			serial, err := GenerateStudy(StudyConfig{Scale: c.scale, Seed: c.seed, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := GenerateStudy(StudyConfig{Scale: c.scale, Seed: c.seed, Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial.Primary, parallel.Primary) {
				t.Fatal("Primary dataset differs between serial and parallel generation")
			}
			if !reflect.DeepEqual(serial.Baseline, parallel.Baseline) {
				t.Fatal("Baseline dataset differs between serial and parallel generation")
			}

			sRes, err := serial.Validate()
			if err != nil {
				t.Fatal(err)
			}
			pRes, err := parallel.Validate()
			if err != nil {
				t.Fatal(err)
			}
			if sRes.Partition != pRes.Partition {
				t.Fatalf("partitions differ: serial %+v, parallel %+v",
					sRes.Partition, pRes.Partition)
			}
			if !reflect.DeepEqual(sRes.Outcomes, pRes.Outcomes) {
				t.Fatal("outcomes differ between serial and parallel validation")
			}
			if !reflect.DeepEqual(sRes.Classifications, pRes.Classifications) {
				t.Fatal("classifications differ between serial and parallel validation")
			}
			if !reflect.DeepEqual(sRes.Breakdown(), pRes.Breakdown()) {
				t.Fatal("taxonomy breakdowns differ between serial and parallel validation")
			}
		})
	}
}

// TestValidateDatasetWorkersMatchesDefault pins the facade helpers to one
// another: the default-worker path and an explicit worker count agree.
func TestValidateDatasetWorkersMatchesDefault(t *testing.T) {
	s := getStudy(t)
	def, err := ValidateDataset(s.Primary)
	if err != nil {
		t.Fatal(err)
	}
	one, err := ValidateDatasetWorkers(s.Primary, 1)
	if err != nil {
		t.Fatal(err)
	}
	if def.Partition != one.Partition {
		t.Fatalf("partitions differ: default %+v, workers=1 %+v", def.Partition, one.Partition)
	}
	if !reflect.DeepEqual(def.Classifications, one.Classifications) {
		t.Fatal("classifications differ between default and workers=1")
	}
}
